"""The asyncio batching server.

Request lifecycle::

    connection -> parse HTTP -> digest memo -> schedule cache
        hit  -> respond (no scheduling, no queueing)
        miss -> coalesce with any identical in-flight request, else
                enqueue on the bounded job queue   (full -> 429)
        batch loop drains the queue (up to ``max_batch`` jobs), runs
        the batch on the persistent WorkerPool, fulfils futures,
        populates the cache
    handler awaits its future under ``timeout_s``  (late -> 504)

Batching is what makes the worker pool a service component rather
than a per-request fork: concurrent misses ride one executor
round-trip, exactly like grid cells ride one ``execute_cells`` call —
and it *is* the same pool class
(:class:`~repro.bench.parallel.WorkerPool`), so `jobs > 1` fans a
batch across processes while ``jobs=1`` schedules in-process with no
multiprocessing at all.

Shutdown: :meth:`ScheduleService.drain` (wired to SIGTERM/SIGINT by
``repro-bench serve``) stops accepting, lets queued and in-flight
jobs finish, flushes the cache's persistent backend, and releases the
workers.  Everything observable goes through :mod:`repro.obs`:
``service.request`` spans, ``service.requests`` /
``service.cache_hits`` / ``service.rejected`` / ``service.timeouts``
counters and a ``service.latency_ms`` histogram land in the run
manifest of a traced run.
"""

from __future__ import annotations

import asyncio
import functools
import hashlib
import signal
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from .. import api
from ..bench.parallel import WorkerPool
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .cache import ScheduleCache
from .protocol import (
    Request,
    parse_schedule_request,
    read_request,
    response_bytes,
    schedule_cell,
    violations_payload,
)

__all__ = ["ServiceConfig", "ScheduleService"]


def _parse_and_key(body: bytes, content_type: str):
    """Parse a request body down to its cache key (module-level so the
    handler can push this CPU-bound step off the event loop — a cold
    300-node parse must not delay concurrent warm hits)."""
    graph_src, machine_src, spec = parse_schedule_request(body,
                                                          content_type)
    graph = api.as_graph(graph_src)
    machine = api.as_machine(machine_src, graph)
    key = (f"{graph.fingerprint()}|{api.machine_fingerprint(machine)}"
           f"|{api.spec_fingerprint(spec)}")
    return key, (graph_src, machine_src, spec)


@dataclass
class ServiceConfig:
    """Tuning knobs of one :class:`ScheduleService`.

    ``port=0`` binds an ephemeral port (tests, self-hosted loadtests);
    the bound port is on :attr:`ScheduleService.port` after
    :meth:`~ScheduleService.start`.  ``queue_limit`` bounds admission
    (beyond it requests get 429), ``max_batch`` how many queued jobs
    one pool round-trip may carry, ``timeout_s`` the per-request
    deadline (504), ``jobs`` the worker count
    (:class:`~repro.bench.parallel.WorkerPool` convention: 1 =
    in-process, 0 = one per CPU).  ``cache_dir`` switches the schedule
    cache to a persistent store so restarts begin warm.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    jobs: int = 1
    queue_limit: int = 64
    max_batch: int = 8
    timeout_s: float = 30.0
    cache_capacity: int = 1024
    cache_dir: Optional[str] = None


class ScheduleService:
    """The scheduling server; start/drain from any asyncio loop."""

    def __init__(self, config: Optional[ServiceConfig] = None,
                 pool: Optional[WorkerPool] = None):
        self.config = config or ServiceConfig()
        self.cache = ScheduleCache(self.config.cache_capacity,
                                   directory=self.config.cache_dir)
        self.pool = pool or WorkerPool(self.config.jobs)
        self.port: Optional[int] = None
        self.stats: Dict[str, int] = {
            "requests": 0, "scheduled": 0, "cache_hits": 0,
            "coalesced": 0, "rejected": 0, "timeouts": 0,
            "bad_requests": 0, "errors": 0, "batches": 0,
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self._queue: Optional[asyncio.Queue] = None
        self._batch_task: Optional[asyncio.Task] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._pending: Dict[str, asyncio.Future] = {}
        self._draining = False
        # Encoded warm responses by key: a hot hit writes pre-built
        # bytes instead of re-serializing the schedule every time.
        self._warm_bytes: "OrderedDict[str, bytes]" = OrderedDict()
        # The service's own threads for parsing and batch dispatch —
        # never the loop's default executor, which other code in the
        # process (e.g. an in-process loadtest client) may saturate.
        self._executor: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind, start serving, start the batch loop."""
        self._queue = asyncio.Queue(maxsize=self.config.queue_limit)
        self._executor = ThreadPoolExecutor(
            max_workers=4, thread_name_prefix="repro-service")
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._batch_task = asyncio.get_running_loop().create_task(
            self._batch_loop())

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT -> graceful drain (the ``serve`` verb's wiring)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda: loop.create_task(self.drain()))

    async def drain(self) -> None:
        """Stop accepting, finish queued and in-flight work, release
        the workers, flush the cache.

        Idempotent and join-able: every caller (the SIGTERM handler,
        the serve verb's epilogue, a test's teardown) awaits the same
        underlying drain, so none returns before the work is done.
        """
        if self._drain_task is None:
            self._drain_task = asyncio.get_running_loop().create_task(
                self._do_drain())
        await asyncio.shield(self._drain_task)

    async def _do_drain(self) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._queue is not None:
            await self._queue.join()
        if self._batch_task is not None:
            self._batch_task.cancel()
            try:
                await self._batch_task
            except asyncio.CancelledError:
                pass
        if self._executor is not None:
            await asyncio.get_running_loop().run_in_executor(
                self._executor, self.pool.drain)
            self._executor.shutdown(wait=True)
        else:
            self.pool.drain()
        self.cache.save()

    async def serve_forever(self) -> None:
        """Block until :meth:`drain` closes the server."""
        assert self._server is not None, "call start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        t0 = time.perf_counter()
        encoded = response_bytes(400, {"error": "unreadable request"})
        request = await read_request(reader)
        if request is not None:
            with _trace.span("service.request", method=request.method,
                             path=request.path):
                response = await self._route(request)
            encoded = (response if isinstance(response, bytes)
                       else response_bytes(*response))
        self.stats["requests"] += 1
        _metrics.incr("service.requests")
        _metrics.observe("service.latency_ms",
                         (time.perf_counter() - t0) * 1000.0)
        try:
            writer.write(encoded)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except ConnectionError:
            pass

    async def _route(self, request: Request
                     ) -> Union[Tuple[int, Dict], bytes]:
        if request.method == "GET" and request.path == "/healthz":
            return 200, {"status": "draining" if self._draining else "ok"}
        if request.method == "GET" and request.path == "/stats":
            return 200, {"service": dict(self.stats),
                         "cache": self.cache.stats(),
                         "queue": (self._queue.qsize()
                                   if self._queue else 0),
                         "jobs": self.pool.jobs}
        if request.method == "POST" and request.path == "/schedule":
            return await self._schedule(request)
        if request.path in ("/schedule", "/healthz", "/stats"):
            self.stats["bad_requests"] += 1
            return 405, {"error": f"{request.method} not allowed on "
                                  f"{request.path}"}
        self.stats["bad_requests"] += 1
        return 404, {"error": f"no such endpoint: {request.path}"}

    async def _schedule(self, request: Request
                        ) -> Union[Tuple[int, Dict], bytes]:
        if self._draining:
            return 503, {"error": "server is draining"}

        # Warm fast path: a byte-identical body resolves straight to a
        # cache key through the digest memo — no JSON, no graph build.
        digest = hashlib.sha256(request.body).hexdigest()
        key = self.cache.key_for(digest)
        sources: Optional[Tuple] = None
        if key is None:
            try:
                # CPU-bound (JSON + graph build + fingerprints): run it
                # off-loop so concurrent warm hits are not delayed.
                key, sources = await asyncio.get_running_loop(
                    ).run_in_executor(
                        self._executor, _parse_and_key, request.body,
                        request.headers.get("content-type", ""))
            except Exception as exc:
                self.stats["bad_requests"] += 1
                return 400, violations_payload(exc)
            self.cache.link_digest(digest, key)

        result = self.cache.lookup(key)
        if result is not None:
            self.stats["cache_hits"] += 1
            _metrics.incr("service.cache_hits")
            return self._warm_response(key, result)

        # Coalesce identical in-flight requests onto one future; only
        # the first of them occupies a queue slot.
        future = self._pending.get(key)
        if future is None:
            if sources is None:
                # Digest memo knew the key but the entry was evicted
                # and nothing is in flight: re-parse to rebuild the job.
                try:
                    sources = parse_schedule_request(
                        request.body,
                        request.headers.get("content-type", ""))
                except Exception as exc:
                    self.stats["bad_requests"] += 1
                    return 400, violations_payload(exc)
            assert self._queue is not None, "call start() first"
            future = asyncio.get_running_loop().create_future()
            try:
                self._queue.put_nowait((key, sources, future))
            except asyncio.QueueFull:
                self.stats["rejected"] += 1
                _metrics.incr("service.rejected")
                return 429, {"error": "job queue is full, retry later",
                             "queue_limit": self.config.queue_limit}
            self._pending[key] = future
        else:
            self.stats["coalesced"] += 1

        try:
            # shield(): several requests may await one coalesced
            # future; one waiter timing out must not cancel the rest.
            result = await asyncio.wait_for(asyncio.shield(future),
                                            self.config.timeout_s)
        except asyncio.TimeoutError:
            self.stats["timeouts"] += 1
            _metrics.incr("service.timeouts")
            return 504, {"error": "scheduling timed out",
                         "timeout_s": self.config.timeout_s}
        if "error" in result:
            self.stats["errors"] += 1
            return 500, result.get("error_payload",
                                   {"error": result["error"]})
        return 200, {"cached": False, **result}

    def _warm_response(self, key: str, result: Dict) -> bytes:
        """Encoded 200 for a cache hit, serialized at most once per key."""
        encoded = self._warm_bytes.get(key)
        if encoded is None:
            encoded = response_bytes(200, {"cached": True, **result})
            self._warm_bytes[key] = encoded
            while len(self._warm_bytes) > self.config.cache_capacity:
                self._warm_bytes.popitem(last=False)
        else:
            self._warm_bytes.move_to_end(key)
        return encoded

    # ------------------------------------------------------------------
    # the batch loop
    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            jobs = [await self._queue.get()]
            while len(jobs) < self.config.max_batch:
                try:
                    jobs.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            with _trace.span("service.batch", size=len(jobs)):
                try:
                    results = await loop.run_in_executor(
                        self._executor, functools.partial(
                            self.pool.run_batch, schedule_cell,
                            [sources for _key, sources, _fut in jobs]))
                except Exception as exc:  # pool died mid-batch
                    results = [{"error": f"worker pool failure: {exc}"}
                               ] * len(jobs)
            self.stats["batches"] += 1
            self.stats["scheduled"] += len(jobs)
            _metrics.observe("service.batch_size", float(len(jobs)))
            for (key, _sources, future), result in zip(jobs, results):
                if "error" not in result:
                    self.cache.put(key, result)
                self._pending.pop(key, None)
                if not future.done():
                    future.set_result(result)
                self._queue.task_done()

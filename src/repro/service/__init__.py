"""Schedule-as-a-service: the repro as a long-running server.

The batch CLI answers "how good are the schedules"; this package
answers the ROADMAP's other axis — how fast can they be *served*.  A
stdlib-``asyncio`` HTTP server (:mod:`repro.service.server`) accepts
scheduling requests (graph + machine + spec, JSON or STG text),
batches concurrent work onto a persistent
:class:`~repro.bench.parallel.WorkerPool`, and memoizes results in an
LRU :class:`~repro.service.cache.ScheduleCache` keyed by the
``repro.api`` fingerprints, so repeated requests for a hot graph are
answered without scheduling anything.

Robustness is part of the contract: per-request timeouts (504), a
bounded queue with backpressure (429), malformed graphs answered with
the model's :class:`~repro.core.schedule.Violation` tables instead of
tracebacks, and a clean drain on SIGTERM.  Drive it with
``repro-bench serve`` / ``repro-bench loadtest``, or in-process:

>>> from repro.service import ScheduleService, ServiceConfig
>>> service = ScheduleService(ServiceConfig(port=0))  # doctest: +SKIP
"""

from .cache import ScheduleCache, ServiceRow
from .client import ServiceClient
from .loadtest import LoadtestReport, loadtest_table, run_loadtest
from .server import ScheduleService, ServiceConfig

__all__ = [
    "ScheduleCache",
    "ServiceRow",
    "ServiceClient",
    "ScheduleService",
    "ServiceConfig",
    "LoadtestReport",
    "loadtest_table",
    "run_loadtest",
]

"""The fingerprint-keyed LRU schedule cache.

Correctness rests on one invariant, property-tested in
``tests/test_api.py``: schedulers are deterministic, so equal
:func:`repro.api.request_key` fingerprints imply bit-identical
schedules — a cached result *is* the result.  The cache therefore
never stores graphs, only ``(graph fp | machine fp | spec)`` keys and
result payloads.

Two layers:

* an in-memory LRU (``capacity`` entries) over result payloads, with a
  bounded sideline memo from raw request-body digests to keys so a
  repeated byte-identical request skips graph parsing entirely — the
  warm path costs two dict lookups;
* optionally, a persistent backend: a
  :class:`~repro.bench.store.ResultStore` of :class:`ServiceRow` rows
  opened through :func:`repro.bench.store.open_store` (the same
  validated path every ``--results`` flag uses), so a restarted server
  begins warm.

``hits`` / ``misses`` count :meth:`lookup` outcomes (process-local,
like every cache-effect counter in this repo — see
:data:`repro.obs.metrics.LOCAL_COUNTERS`).
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from ..bench.store import open_store

__all__ = ["ServiceRow", "ScheduleCache"]


@dataclass
class ServiceRow:
    """One persisted schedule: the store row behind the cache.

    Store-keyed as ``(algorithm=spec, graph=graph fp, fingerprint=
    machine fp)`` — the same triple as the in-memory key, spelled in
    :class:`~repro.bench.store.ResultStore` terms.
    """

    algorithm: str
    graph: str
    machine: str
    length: float
    placements: str  # JSON: {node: [proc, start, finish]}


class ScheduleCache:
    """LRU over schedule results, keyed by :func:`repro.api.request_key`."""

    def __init__(self, capacity: int = 1024,
                 directory: Optional[str] = None):
        self.capacity = max(1, int(capacity))
        self.hits = 0
        self.misses = 0
        self._lru: "OrderedDict[str, Dict]" = OrderedDict()
        self._digests: "OrderedDict[str, str]" = OrderedDict()
        self._store = (open_store(directory, basename="schedules",
                                  row_type=ServiceRow)
                       if directory else None)

    def __len__(self) -> int:
        return len(self._lru)

    # ------------------------------------------------------------------
    # the digest memo: raw request bytes -> key, no parsing
    # ------------------------------------------------------------------
    def key_for(self, digest: str) -> Optional[str]:
        """The request key a body digest resolved to before, if any."""
        return self._digests.get(digest)

    def link_digest(self, digest: str, key: str) -> None:
        """Remember that a body digest resolves to ``key``."""
        self._digests[digest] = key
        self._digests.move_to_end(digest)
        while len(self._digests) > 4 * self.capacity:
            self._digests.popitem(last=False)

    # ------------------------------------------------------------------
    # the result cache
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Optional[Dict]:
        """The cached result payload for ``key``, or ``None``."""
        result = self._lru.get(key)
        if result is not None:
            self._lru.move_to_end(key)
            self.hits += 1
            return result
        if self._store is not None:
            gfp, mfp, spec = key.split("|", 2)
            row = self._store.get(spec, gfp, mfp)
            if row is not None:
                result = {"key": key, "spec": spec, "length": row.length,
                          "schedule": json.loads(row.placements)}
                self._insert(key, result)
                self.hits += 1
                return result
        self.misses += 1
        return None

    def put(self, key: str, result: Dict) -> None:
        """Insert a freshly computed result payload under ``key``."""
        self._insert(key, result)
        if self._store is not None:
            gfp, mfp, spec = key.split("|", 2)
            self._store.put(ServiceRow(
                algorithm=spec, graph=gfp, machine=mfp,
                length=float(result["length"]),
                placements=json.dumps(result["schedule"],
                                      sort_keys=True)), mfp)

    def _insert(self, key: str, result: Dict) -> None:
        self._lru[key] = result
        self._lru.move_to_end(key)
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)

    # ------------------------------------------------------------------
    def save(self) -> None:
        """Flush the persistent backend, if any (drain/shutdown path)."""
        if self._store is not None:
            self._store.save()

    def stats(self) -> Dict:
        """Counters for ``GET /stats`` and the loadtest report."""
        return {"size": len(self._lru), "capacity": self.capacity,
                "hits": self.hits, "misses": self.misses,
                "persistent": self._store is not None}

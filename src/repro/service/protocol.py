"""Wire protocol of the scheduling service.

One place for everything both ends of the socket must agree on: the
minimal HTTP/1.1 framing (stdlib-only — the server reads requests off
an ``asyncio`` stream, so no external HTTP framework), the request
payload schema, the error shape, and the picklable worker function the
batch loop ships to the :class:`~repro.bench.parallel.WorkerPool`.

Request payloads (``POST /schedule``)::

    {"graph": {...} | "<STG text>", "machine": ..., "spec": "mcp"}

with ``graph``/``machine`` in any form :func:`repro.api.as_graph` /
:func:`repro.api.as_machine` accepts; a non-JSON body is treated as
bare STG text scheduled with the default spec.  Malformed input never
produces a traceback: it comes back as HTTP 400 carrying the model's
own :class:`~repro.core.schedule.Violation` rows plus their rendered
table — the same shape ``repro-bench check`` prints.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.exceptions import GraphError, MachineError
from ..core.schedule import Violation, render_violations

__all__ = [
    "Request",
    "read_request",
    "response_bytes",
    "parse_schedule_request",
    "violations_payload",
    "schedule_cell",
]

#: Largest request body the server will read (64 MiB guards the loop
#: against a runaway Content-Length, not a real workload limit).
MAX_BODY = 64 * 1024 * 1024

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str]
    body: bytes


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Read one HTTP/1.1 request off ``reader``; ``None`` on EOF/garbage.

    Deliberately minimal: request line, headers, ``Content-Length``
    body.  No chunked encoding, no keep-alive pipelining — every
    response closes the connection, which keeps the server loop simple
    and is plenty for a scheduling RPC.
    """
    try:
        line = await reader.readline()
        if not line or not line.strip():
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > MAX_BODY:
            return Request(method, path, headers, b"")
        body = await reader.readexactly(length) if length else b""
        return Request(method, path, headers, body)
    except (asyncio.IncompleteReadError, ValueError,
            ConnectionError, UnicodeDecodeError):
        return None


def response_bytes(status: int, payload: Dict) -> bytes:
    """A complete HTTP/1.1 response carrying ``payload`` as JSON."""
    body = json.dumps(payload, sort_keys=True).encode()
    head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n")
    return head.encode("latin-1") + body


def parse_schedule_request(body: bytes,
                           content_type: str = "") -> Tuple[object, object,
                                                            str]:
    """Split a request body into ``(graph, machine, spec)`` sources.

    JSON bodies use the payload schema above; anything else is bare
    STG text.  Raises :class:`GraphError` (bad/missing graph or
    undecodable JSON) or :class:`MachineError` — the errors
    :func:`violations_payload` knows how to render.
    """
    text = body.decode("utf-8", errors="replace")
    stripped = text.lstrip()
    if "json" in content_type or stripped.startswith("{"):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise GraphError(f"request body is not valid JSON ({exc})")
        if not isinstance(doc, dict):
            raise GraphError("request JSON must be an object")
        if "graph" not in doc:
            raise GraphError("request is missing the 'graph' field")
        spec = doc.get("spec", "mcp")
        if not isinstance(spec, str) or not spec:
            raise GraphError("'spec' must be a non-empty string")
        return doc["graph"], doc.get("machine"), spec
    if not stripped:
        raise GraphError("empty request body")
    return text, None, "mcp"


def violations_payload(exc: Exception) -> Dict:
    """The 400-response payload for a malformed request.

    The exception becomes a :class:`Violation` row (code ``graph``,
    ``machine`` or ``spec`` by origin — the checker's lowercase code
    convention) rendered with the same :func:`render_violations` table
    the checker CLI prints, so service clients and batch users read
    one error format.
    """
    code = ("machine" if isinstance(exc, MachineError) else
            "spec" if isinstance(exc, (KeyError, ValueError)) else "graph")
    message = str(exc).strip("'\"") or type(exc).__name__
    rows: List[Violation] = [Violation(code=code, message=message)]
    return {
        "error": message,
        "violations": [{"code": v.code, "message": v.message,
                        "node": v.node, "proc": v.proc} for v in rows],
        "table": render_violations(rows),
    }


def schedule_cell(args) -> Dict:
    """Worker-side of one scheduling job (module-level: it pickles).

    ``args = (graph source, machine source, spec)`` exactly as parsed
    from the request — plain JSON-able values, cheap to ship to a pool
    worker.  Returns the result payload the cache stores; never raises
    (an unexpected failure comes back as an ``{"error": ...}`` payload
    so one bad job cannot poison its whole batch).
    """
    graph_src, machine_src, spec = args
    from .. import api

    try:
        graph = api.as_graph(graph_src)
        machine = api.as_machine(machine_src, graph)
        sched = api.schedule(graph, machine, spec)
        return {
            "key": api.request_key(graph, machine, spec),
            "spec": api.spec_fingerprint(spec),
            "length": sched.length,
            "schedule": {str(node): [int(proc), float(start), float(end)]
                         for node, (proc, start, end)
                         in sorted(sched.to_dict().items())},
        }
    except Exception as exc:  # ships home; the handler maps it to 4xx/5xx
        return {"error": str(exc) or type(exc).__name__,
                "error_payload": violations_payload(exc)}

"""A minimal blocking client for the scheduling service.

Stdlib :mod:`http.client` only — the counterpart of the server's
hand-rolled HTTP.  Every call returns ``(status, payload)`` with the
payload already JSON-decoded; no exceptions for HTTP-level errors
(400/429/504 are *protocol*, the loadtest counts them), only for
transport failures (``OSError``).
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Optional, Tuple

__all__ = ["ServiceClient"]


class ServiceClient:
    """Blocking HTTP client bound to one service address."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None,
                 content_type: str = "application/json"
                 ) -> Tuple[int, Dict]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            headers = {"Content-Type": content_type} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                payload = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                payload = {"error": raw.decode("utf-8", "replace")}
            return response.status, payload
        finally:
            conn.close()

    # ------------------------------------------------------------------
    def post_body(self, body: bytes,
                  content_type: str = "application/json"
                  ) -> Tuple[int, Dict]:
        """POST pre-serialized bytes to ``/schedule`` (loadtest path —
        byte-identical bodies hit the server's digest memo)."""
        return self._request("POST", "/schedule", body, content_type)

    def schedule(self, graph: Any, machine: Any = None,
                 spec: str = "mcp") -> Tuple[int, Dict]:
        """Schedule ``graph`` remotely; sources as :mod:`repro.api`
        accepts them (mappings, STG text, processor counts)."""
        body = json.dumps({"graph": graph, "machine": machine,
                           "spec": spec}, sort_keys=True).encode()
        return self.post_body(body)

    def schedule_stg(self, stg_text: str) -> Tuple[int, Dict]:
        """Schedule bare STG text with the default spec."""
        return self.post_body(stg_text.encode(), content_type="text/plain")

    def stats(self) -> Tuple[int, Dict]:
        return self._request("GET", "/stats")

    def healthz(self) -> Tuple[int, Dict]:
        return self._request("GET", "/healthz")

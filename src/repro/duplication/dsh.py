"""DSH — Duplication Scheduling Heuristic (Kruatrachue & Lewis, 1988).

The representative TDB algorithm (the class the paper describes in its
taxonomy but excludes from the benchmark).  DSH is HLFET-shaped list
scheduling — static-level priorities, min-EST processor choice — with
one addition: before committing a node to a processor, the *duplication
time slot* (the idle window between the processor's ready time and the
node's data-constrained start) is filled with copies of the node's most
critical parents, as long as each copy reduces the node's start time.

With CCR >> 1 this collapses communication chains: a child no longer
waits for a message if re-running its parent locally is cheaper — the
behaviour the duplication ablation bench measures.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.attributes import static_blevel
from ..core.graph import TaskGraph
from ..core.listsched import ReadyTracker
from ..core.machine import Machine
from .schedule import DuplicationSchedule

__all__ = ["DSH", "dsh_schedule"]


class DSH:
    """Duplication Scheduling Heuristic.

    Not registered in the 15-algorithm registry (the paper's benchmark
    excludes TDB); exposed through :func:`dsh_schedule` and this class.
    """

    name = "DSH"
    klass = "TDB"
    cp_based = False
    dynamic_priority = False
    uses_insertion = True
    complexity = "O(v^4)"

    def schedule(self, graph: TaskGraph,
                 machine: Machine) -> DuplicationSchedule:
        sl = static_blevel(graph)
        sched = DuplicationSchedule(graph, machine.num_procs)
        ready = ReadyTracker(graph)
        while not ready.all_scheduled():
            node = max(ready.iter_ready(), key=lambda n: (sl[n], -n))
            best: Optional[Tuple[float, int, list]] = None
            for proc in range(machine.num_procs):
                start, dup_plan = self._start_with_duplication(
                    sched, node, proc
                )
                if best is None or (start, proc) < (best[0], best[1]):
                    best = (start, proc, dup_plan)
            start, proc, dup_plan = best
            for (parent, p_start) in dup_plan:
                sched.place_copy(parent, proc, p_start)
            sched.place_copy(node, proc, start)
            ready.mark_scheduled(node)
        return sched

    # ------------------------------------------------------------------
    def _start_with_duplication(self, sched: DuplicationSchedule,
                                node: int, proc: int):
        """Best start of ``node`` on ``proc`` and the copy plan achieving it.

        Copies are appended inside the duplication slot
        ``[proc_ready, start)``; each accepted copy must strictly reduce
        the node's start.
        """
        graph = sched.graph
        slot_begin = sched.proc_ready_time(proc)
        # Arrival of each parent's data given current copies + planned ones.
        local_finish = {}  # parent -> finish of planned/extant local copy
        for parent in graph.predecessors(node):
            cp = sched.copy_on(parent, proc)
            if cp is not None:
                local_finish[parent] = cp.finish

        def arrival(parent: int) -> float:
            if parent in local_finish:
                return local_finish[parent]
            c = graph.comm_cost(parent, node)
            return min(
                p.finish + (0.0 if p.proc == proc else c)
                for p in sched.copies_of(parent)
            )

        def current_start(begin: float) -> float:
            drt = max(
                (arrival(p) for p in graph.predecessors(node)),
                default=0.0,
            )
            return max(begin, drt)

        plan = []
        cursor = slot_begin
        start = current_start(cursor)
        while True:
            # Critical parent: the one whose message bounds the start.
            parents = [
                p for p in graph.predecessors(node)
                if p not in local_finish
            ]
            if not parents:
                break
            crit = max(parents, key=lambda p: (arrival(p), p))
            if arrival(crit) <= cursor + 1e-9:
                break  # messages no longer the bottleneck
            # A local copy of crit starts after its own inputs arrive
            # here (using existing copies only — single-level lookahead).
            copy_drt = 0.0
            for q in graph.predecessors(crit):
                cq = graph.comm_cost(q, crit)
                arr = min(
                    p.finish + (0.0 if p.proc == proc else cq)
                    for p in sched.copies_of(q)
                )
                copy_drt = max(copy_drt, arr)
            copy_start = max(cursor, copy_drt)
            copy_finish = copy_start + graph.weight(crit)
            local_finish[crit] = copy_finish
            new_start = current_start(copy_finish)
            if new_start < start - 1e-9:
                plan.append((crit, copy_start))
                cursor = copy_finish
                start = new_start
            else:
                del local_finish[crit]
                break
        return start, plan


def dsh_schedule(graph: TaskGraph, num_procs: int) -> DuplicationSchedule:
    """Convenience wrapper: DSH on ``num_procs`` identical processors."""
    return DSH().schedule(graph, Machine(num_procs))

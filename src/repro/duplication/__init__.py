"""Task-duplication-based (TDB) scheduling — library extension.

The paper's taxonomy covers TDB algorithms (DSH, BTDH, CPFD, ...) but
its benchmark excludes them; this package provides the representation
(:class:`DuplicationSchedule`) and the classic DSH algorithm so the
suite can still quantify what duplication buys (see
``benchmarks/bench_ablation_duplication.py``).
"""

from .dsh import DSH, dsh_schedule
from .schedule import (
    CopyPlacement,
    DuplicationSchedule,
    validate_duplication,
)

__all__ = [
    "DSH",
    "dsh_schedule",
    "DuplicationSchedule",
    "CopyPlacement",
    "validate_duplication",
]

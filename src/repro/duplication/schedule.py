"""Schedules with task duplication (the TDB class).

The paper's taxonomy includes *task-duplication-based* (TDB) scheduling:
"the rationale behind the TDB scheduling algorithms is to reduce the
communication overhead by redundantly allocating some nodes to multiple
processors" (Section 4).  The paper excludes TDB from its benchmark to
narrow scope; this package implements the class as a library extension.

Duplication breaks the one-placement-per-task invariant of
:class:`repro.core.schedule.Schedule`, so TDB gets its own
representation: placements are (node, copy) pairs, and the precedence
rule becomes *existential* — a copy of ``v`` is valid if **some** copy
of each parent ``u`` delivers its data in time.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.exceptions import ScheduleError
from ..core.graph import TaskGraph

__all__ = ["CopyPlacement", "DuplicationSchedule", "validate_duplication"]

_EPS = 1e-9


@dataclass(frozen=True)
class CopyPlacement:
    """One copy of a task: which processor, when."""

    node: int
    copy: int
    proc: int
    start: float
    finish: float


class DuplicationSchedule:
    """A schedule in which a task may run on several processors."""

    def __init__(self, graph: TaskGraph, num_procs: int):
        if num_procs < 1:
            raise ScheduleError("schedule needs at least one processor")
        self.graph = graph
        self.num_procs = int(num_procs)
        self._copies: Dict[int, List[CopyPlacement]] = {
            n: [] for n in graph.nodes()
        }
        self._starts: List[List[float]] = [[] for _ in range(num_procs)]
        self._finishes: List[List[float]] = [[] for _ in range(num_procs)]
        self._ids: List[List[Tuple[int, int]]] = [[] for _ in range(num_procs)]

    # ------------------------------------------------------------------
    def copies_of(self, node: int) -> List[CopyPlacement]:
        return list(self._copies[node])

    def has_copy(self, node: int) -> bool:
        return bool(self._copies[node])

    def copy_on(self, node: int, proc: int) -> Optional[CopyPlacement]:
        for cp in self._copies[node]:
            if cp.proc == proc:
                return cp
        return None

    def proc_ready_time(self, proc: int) -> float:
        fins = self._finishes[proc]
        return fins[-1] if fins else 0.0

    def tasks_on(self, proc: int) -> List[CopyPlacement]:
        out = []
        for (node, copy) in self._ids[proc]:
            for cp in self._copies[node]:
                if cp.copy == copy and cp.proc == proc:
                    out.append(cp)
                    break
        return out

    @property
    def length(self) -> float:
        """Makespan over all copies (a duplicate counts: it occupies its
        processor even if logically redundant)."""
        return max((f[-1] for f in self._finishes if f), default=0.0)

    def processors_used(self) -> int:
        return sum(1 for s in self._starts if s)

    def is_complete(self) -> bool:
        return all(self._copies[n] for n in self.graph.nodes())

    # ------------------------------------------------------------------
    def place_copy(self, node: int, proc: int, start: float) -> CopyPlacement:
        """Place a (new) copy of ``node`` on ``proc`` at ``start``."""
        if not (0 <= proc < self.num_procs):
            raise ScheduleError(f"processor {proc} out of range")
        if start < -_EPS:
            raise ScheduleError(f"negative start for node {node}")
        if self.copy_on(node, proc) is not None:
            raise ScheduleError(
                f"node {node} already has a copy on P{proc}"
            )
        dur = self.graph.weight(node)
        finish = start + dur
        starts, fins, ids = (
            self._starts[proc], self._finishes[proc], self._ids[proc]
        )
        i = bisect.bisect_left(starts, start)
        if i > 0 and fins[i - 1] > start + _EPS:
            raise ScheduleError(f"copy of {node} overlaps on P{proc}")
        if i < len(starts) and starts[i] < finish - _EPS:
            raise ScheduleError(f"copy of {node} overlaps on P{proc}")
        copy_idx = len(self._copies[node])
        cp = CopyPlacement(node, copy_idx, proc, start, finish)
        starts.insert(i, start)
        fins.insert(i, finish)
        ids.insert(i, (node, copy_idx))
        self._copies[node].append(cp)
        return cp

    # ------------------------------------------------------------------
    def data_ready_time(self, node: int, proc: int) -> float:
        """Earliest all-inputs time on ``proc``, choosing for each parent
        its best copy (local copy: no communication)."""
        t = 0.0
        for parent in self.graph.predecessors(node):
            copies = self._copies[parent]
            if not copies:
                raise ScheduleError(
                    f"parent {parent} of {node} has no copy yet"
                )
            c = self.graph.comm_cost(parent, node)
            arr = min(
                cp.finish + (0.0 if cp.proc == proc else c)
                for cp in copies
            )
            if arr > t:
                t = arr
        return t

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n_copies = sum(len(c) for c in self._copies.values())
        return (
            f"DuplicationSchedule(graph={self.graph.name!r}, "
            f"copies={n_copies}, length={self.length:.4g})"
        )


def validate_duplication(schedule: DuplicationSchedule) -> None:
    """Full invariant check for a duplication schedule.

    1. every task has at least one copy; copies sit in processor range
       with weight-consistent durations and no overlaps;
    2. existential precedence: each copy of ``v`` starts no earlier than,
       for every parent ``u``, the best over ``u``'s copies of
       ``finish + (0 if co-located else c(u, v))``.
    """
    g = schedule.graph
    for n in g.nodes():
        if not schedule.has_copy(n):
            raise ScheduleError(f"node {n} has no scheduled copy")
    for proc in range(schedule.num_procs):
        prev_finish = 0.0
        prev = None
        for cp in schedule.tasks_on(proc):
            if cp.start < -_EPS:
                raise ScheduleError(f"copy of {cp.node} starts before 0")
            if abs((cp.finish - cp.start) - g.weight(cp.node)) > 1e-6:
                raise ScheduleError(
                    f"copy of {cp.node} has wrong duration"
                )
            if cp.start < prev_finish - _EPS:
                raise ScheduleError(
                    f"copies {prev} and {cp.node} overlap on P{proc}"
                )
            prev_finish, prev = cp.finish, cp.node
    for v in g.nodes():
        for cp in schedule.copies_of(v):
            for u in g.predecessors(v):
                c = g.comm_cost(u, v)
                best = min(
                    up.finish + (0.0 if up.proc == cp.proc else c)
                    for up in schedule.copies_of(u)
                )
                if cp.start < best - 1e-6:
                    raise ScheduleError(
                        f"copy of {v} on P{cp.proc} starts at {cp.start} "
                        f"before any copy of parent {u} can deliver "
                        f"(earliest {best})"
                    )

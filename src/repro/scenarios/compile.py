"""Compiling scenario specs down to the parallel grid engine.

A validated :class:`~repro.scenarios.spec.ScenarioSpec` lowers to a
list of :class:`Variant` objects — one per sweep point — each carrying
the concrete graphs, the :class:`~repro.bench.runner.BenchConfig` and
the algorithm names for one ``run_grid`` call.  Running a compiled
scenario therefore inherits everything the PR-1 engine provides:
``jobs`` fans cells over worker processes, a
:class:`~repro.bench.store.ResultStore` persists rows keyed by the
config fingerprint, and ``resume`` replays cached cells verbatim.

Everything here is deterministic: graphs come from seeded generators,
variants enumerate the sweep's cartesian product in axis order, and
rows keep the engine's serial order — compiling the same spec twice
yields cell-for-cell identical grids.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..bench.runner import BenchConfig
from ..bench.tables import Table
from ..core.graph import TaskGraph
from ..metrics.measures import RunResult
from ..network.topology import Topology
from .spec import (
    ScenarioSpec,
    SpecError,
    expand_algorithms,
    sweep_points,
    validate_spec,
    variant_document,
)

__all__ = [
    "Variant",
    "CompiledScenario",
    "ScenarioResult",
    "SimScenarioResult",
    "AdvScenarioResult",
    "compile_scenario",
    "online_counterpart",
    "run_scenario",
    "run_sim_scenario",
    "run_adv_scenario",
    "scenario_tables",
    "sim_tables",
    "adv_tables",
    "online_tables",
]


# ----------------------------------------------------------------------
# graph building
# ----------------------------------------------------------------------
def _build_graphs(graphs: Mapping, full: Optional[bool]
                  ) -> Tuple[List[TaskGraph], Optional[Dict[str, float]]]:
    """Materialise the graph axis; returns (graphs, constructed optima)."""
    from ..bench import suites
    from ..generators.random_graphs import rgbos_graph, rgnos_graph
    from ..generators.rgpos import rgpos_instance
    from ..generators.traced import cholesky_graph

    optima: Optional[Dict[str, float]] = None
    if "suite" in graphs:
        out = suites.get_suite(graphs["suite"],
                               full=graphs.get("full", full))
    else:
        gen = graphs["generator"]
        seed = int(graphs.get("seed", 0))
        out = []
        if gen == "rgnos":
            for v in graphs["sizes"]:
                for ccr in graphs["ccrs"]:
                    for par in graphs["parallelisms"]:
                        out.append(rgnos_graph(
                            v, ccr, par,
                            seed=seed + 10_000 * int(10 * ccr)
                            + 100 * par + v))
        elif gen == "rgbos":
            for v in graphs["sizes"]:
                for ccr in graphs["ccrs"]:
                    out.append(rgbos_graph(
                        v, ccr, seed=seed + 1000 * int(10 * ccr) + v))
        elif gen == "rgpos":
            num_procs = int(graphs.get("procs", 8))
            optima = {}
            for v in graphs["sizes"]:
                for ccr in graphs["ccrs"]:
                    inst = rgpos_instance(
                        v, ccr, num_procs=num_procs,
                        seed=seed + 2000 * int(10 * ccr) + v,
                        chain_processors=1,
                        extra_edge_factor=0.6 * v)
                    out.append(inst.graph)
                    optima[inst.graph.name] = inst.optimal_length
        elif gen == "cholesky":
            ccr = float(graphs.get("ccr", 1.0))
            out = [cholesky_graph(n, ccr=ccr) for n in graphs["dims"]]
        else:  # pragma: no cover - schema rejects unknown generators
            raise SpecError("graphs.generator", f"unhandled {gen!r}")
    limit = graphs.get("limit")
    if limit is not None:
        out = out[:limit]
        if optima is not None:
            keep = {g.name for g in out}
            optima = {k: v for k, v in optima.items() if k in keep}
    return out, optima


# ----------------------------------------------------------------------
# machine building
# ----------------------------------------------------------------------
def _build_topology(apn: Mapping) -> Topology:
    kind = apn["kind"]
    if kind == "hypercube":
        topo = Topology.hypercube(apn["dim"])
    elif kind == "ring":
        topo = Topology.ring(apn["procs"])
    elif kind == "chain":
        topo = Topology.chain(apn["procs"])
    elif kind == "star":
        topo = Topology.star(apn["procs"])
    elif kind == "clique":
        topo = Topology.clique(apn["procs"])
    elif kind == "mesh2d":
        topo = Topology.mesh2d(apn["rows"], apn["cols"])
    else:  # random
        topo = Topology.random_connected(
            apn["procs"], extra_links=apn.get("extra_links", 0),
            seed=apn.get("seed", 0))
    bandwidth = apn.get("bandwidth", 1.0)
    if bandwidth != 1.0:
        topo = topo.with_bandwidth(bandwidth)
    return topo


def _build_sim(simulate: Mapping):
    """Lower a validated ``simulate:`` block to a ``SimConfig``."""
    if not simulate:
        return None
    from ..sim.bench import SimConfig
    from ..sim.perturb import perturbation_from_dict

    return SimConfig(
        perturb=perturbation_from_dict(simulate.get("perturb", {})),
        network=simulate.get("network", "auto"),
        trials=int(simulate.get("trials", 100)),
        seed=int(simulate.get("seed", 0)),
        net_scale=float(simulate.get("scale", 1.0)),
        net_latency=float(simulate.get("latency", 0.0)),
    )


def _build_adv(adversarial: Mapping):
    """Lower a validated ``adversarial:`` block to a ``SearchConfig``."""
    if not adversarial:
        return None
    from ..adversarial.search import SearchConfig

    return SearchConfig(
        pair=tuple(adversarial["pair"]),
        objective=adversarial.get("objective", "ratio"),
        steps=int(adversarial.get("steps", 200)),
        chains=int(adversarial.get("chains", 4)),
        temperature=float(adversarial.get("temperature", 0.02)),
        cooling=float(adversarial.get("cooling", 0.97)),
        seed=int(adversarial.get("seed", 0)),
        ops=tuple(adversarial.get("ops", ())),
        trials=int(adversarial.get("trials", 25)),
        noise=float(adversarial.get("noise", 0.3)),
    )


def online_counterpart(algorithm: str, imode: str, seed: int = 0) -> str:
    """The canonical ``online:`` name of a static algorithm under ``imode``.

    ``algorithm`` must be component-expressible — one of the named BNP
    designs or a ``param:`` spec (the schema's ``online`` check
    guarantees this for compiled scenarios).
    """
    from ..algorithms.components import BNP_SPECS, parse_spec
    from ..sim.online import OnlineSchedulerSpec

    base = (parse_spec(algorithm)
            if algorithm.lower().startswith("param:")
            else BNP_SPECS[algorithm.upper()])
    return OnlineSchedulerSpec(
        prio=base.prio, ready=base.ready, proc=base.proc,
        insert=base.insert, imode=imode, seed=seed,
    ).canonical()


def _expand_online(algorithms: Tuple[str, ...],
                   online: Mapping) -> Tuple[str, ...]:
    """Append each algorithm's online counterparts, one per imode."""
    if not online:
        return algorithms
    from ..sim.online import IMODES

    seed = int(online.get("seed", 0))
    out = list(algorithms)
    for imode in online.get("imodes", IMODES):
        for alg in algorithms:
            name = online_counterpart(alg, imode, seed)
            if name not in out:
                out.append(name)
    return tuple(out)


def _build_config(machine: Mapping) -> BenchConfig:
    procs = machine.get("bnp_procs")
    speeds = machine.get("bnp_speeds")
    return BenchConfig(
        bnp_procs=None if procs in (None, "unbounded") else int(procs),
        bnp_speeds=tuple(speeds) if speeds else None,
        apn_topology=(_build_topology(machine["apn"])
                      if "apn" in machine else None),
        validate_schedules=machine.get("validate", True),
    )


# ----------------------------------------------------------------------
# compiled form
# ----------------------------------------------------------------------
@dataclass
class Variant:
    """One sweep point, ready for a ``run_grid`` call.

    ``sim`` is present when the spec carries a ``simulate:`` block —
    the same variant then also compiles to one
    :func:`repro.sim.bench.run_sim_grid` call.
    """

    label: str
    overrides: Dict[str, object]
    graphs: List[TaskGraph]
    config: BenchConfig
    algorithms: Tuple[str, ...]
    optima: Optional[Dict[str, float]] = None
    sim: Optional[object] = None  # repro.sim.bench.SimConfig
    adv: Optional[object] = None  # repro.adversarial.search.SearchConfig
    #: The validated ``online:`` block; when non-empty, ``algorithms``
    #: already includes the per-imode online counterparts.
    online: Dict[str, object] = field(default_factory=dict)

    @property
    def num_cells(self) -> int:
        return len(self.graphs) * len(self.algorithms)


@dataclass
class CompiledScenario:
    """A spec lowered to grid-engine variants."""

    spec: ScenarioSpec
    variants: List[Variant]

    @property
    def num_cells(self) -> int:
        return sum(v.num_cells for v in self.variants)


def _variant_label(overrides: Mapping[str, object]) -> str:
    if not overrides:
        return "base"
    parts = []
    for path, value in overrides.items():
        leaf = path.split(".")[-1]
        parts.append(f"{leaf}={json.dumps(value, separators=(',', ':'))}"
                     if isinstance(value, (dict, list))
                     else f"{leaf}={value}")
    return ",".join(parts)


def compile_scenario(spec: ScenarioSpec,
                     full: Optional[bool] = None) -> CompiledScenario:
    """Lower a validated spec to concrete grid-engine variants.

    ``full`` is the CLI's scale flag; it only affects ``graphs.suite``
    axes that do not pin their own ``full`` value.  Compilation is
    deterministic — same spec, same variants, same graphs.
    """
    variants: List[Variant] = []
    for overrides in sweep_points(spec):
        doc = variant_document(spec, overrides)
        sub = validate_spec(doc)
        graphs, optima = _build_graphs(sub.graphs, full)
        if not graphs:
            raise SpecError("graphs", "selection produced no graphs")
        variants.append(Variant(
            label=_variant_label(overrides),
            overrides=dict(overrides),
            graphs=graphs,
            config=_build_config(sub.machine),
            algorithms=_expand_online(expand_algorithms(sub.algorithms),
                                      sub.online),
            optima=optima,
            sim=_build_sim(sub.simulate),
            adv=_build_adv(sub.adversarial),
            online=dict(sub.online),
        ))
    return CompiledScenario(spec=spec, variants=variants)


# ----------------------------------------------------------------------
# running
# ----------------------------------------------------------------------
@dataclass
class ScenarioResult:
    """Rows of every variant of one scenario run."""

    compiled: CompiledScenario
    rows: List[Tuple[Variant, List[RunResult]]] = field(
        default_factory=list)

    @property
    def spec(self) -> ScenarioSpec:
        return self.compiled.spec


@dataclass
class SimScenarioResult:
    """Monte-Carlo rows of every variant of one simulated scenario run."""

    compiled: CompiledScenario
    rows: List[Tuple[Variant, List]] = field(default_factory=list)

    @property
    def spec(self) -> ScenarioSpec:
        return self.compiled.spec

    def all_rows(self) -> List:
        return [row for _, rows in self.rows for row in rows]


def run_sim_scenario(compiled: CompiledScenario,
                     jobs: Optional[int] = None,
                     store=None,
                     resume: bool = False) -> SimScenarioResult:
    """Execute every variant's schedules through the sim grid.

    Variants without their own ``simulate`` axis inherit the spec's
    block; a scenario with no ``simulate:`` block at all still runs,
    deterministically (zero noise) — useful as a sanity anchor.  The
    shared ``store`` keys rows by the combined bench|sim fingerprint.
    """
    from ..sim.bench import SimConfig, run_sim_grid

    result = SimScenarioResult(compiled)
    for variant in compiled.variants:
        rows = run_sim_grid(
            list(variant.algorithms), variant.graphs,
            config=variant.config, sim=variant.sim or SimConfig(),
            jobs=jobs, store=store, resume=resume,
        )
        result.rows.append((variant, rows))
    return result


@dataclass
class AdvScenarioResult:
    """Finished search chains of every variant of one scenario run."""

    compiled: CompiledScenario
    rows: List[Tuple[Variant, List]] = field(default_factory=list)

    @property
    def spec(self) -> ScenarioSpec:
        return self.compiled.spec

    def all_rows(self) -> List:
        return [row for _, rows in self.rows for row in rows]


def run_adv_scenario(compiled: CompiledScenario,
                     jobs: Optional[int] = None,
                     store=None,
                     resume: bool = False) -> AdvScenarioResult:
    """Run every variant's adversarial search over its graph axis.

    The spec must carry an ``adversarial:`` block (directly or via a
    sweep override); each variant's graphs become the chains' seed
    instances.  The shared ``store`` caches chains keyed by the search
    fingerprint, so ``resume`` replays a finished search verbatim.
    """
    from ..adversarial.search import run_search

    result = AdvScenarioResult(compiled)
    for variant in compiled.variants:
        if variant.adv is None:
            raise SpecError(
                "adversarial",
                f"variant {variant.label!r} has no adversarial block — "
                "add one to the spec (or to every sweep point)")
        rows = run_search(
            variant.adv, variant.graphs, bench=variant.config,
            jobs=jobs, store=store, resume=resume,
        )
        result.rows.append((variant, rows))
    return result


def run_scenario(compiled: CompiledScenario,
                 jobs: Optional[int] = None,
                 store=None,
                 resume: bool = False) -> ScenarioResult:
    """Run every variant through the grid engine, in variant order.

    All variants share one store: their config fingerprints (and graph
    names) keep the cache keys apart, and variants that happen to agree
    on a cell reuse each other's rows under ``resume``.
    """
    from ..bench.runner import run_grid

    result = ScenarioResult(compiled)
    for variant in compiled.variants:
        rows = run_grid(
            list(variant.algorithms), variant.graphs,
            config=variant.config, optima=variant.optima,
            jobs=jobs, store=store, resume=resume,
        )
        result.rows.append((variant, rows))
    return result


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _metric_cell(row: RunResult, metric: str) -> str:
    value = getattr(row, "degradation" if metric == "degradation"
                    else metric)
    if value is None:
        return "-"
    if metric == "procs_used":
        return str(value)
    if metric == "runtime_s":
        return f"{value:.4f}"
    return f"{value:.3f}" if metric != "length" else f"{value:g}"


def scenario_tables(result: ScenarioResult) -> Tuple[Table, Table]:
    """Render a run as (per-cell detail, per-variant summary) tables."""
    spec = result.spec
    metrics = list(spec.metrics)

    detail_rows: List[List[str]] = []
    for variant, rows in result.rows:
        for row in rows:
            detail_rows.append(
                [variant.label, row.graph, str(row.num_nodes),
                 row.algorithm]
                + [_metric_cell(row, m) for m in metrics]
            )
    detail = Table(
        f"scenario:{spec.name}",
        spec.description or f"Scenario {spec.name}",
        ["variant", "graph", "v", "algorithm"] + metrics,
        detail_rows,
    )

    summary_rows: List[List[str]] = []
    for variant, rows in result.rows:
        per_alg: Dict[str, List[RunResult]] = {}
        for row in rows:
            per_alg.setdefault(row.algorithm, []).append(row)
        for alg in variant.algorithms:
            cells = per_alg.get(alg, [])
            line = [variant.label, alg, str(len(cells))]
            for metric in metrics:
                values = []
                for row in cells:
                    v = (row.degradation if metric == "degradation"
                         else getattr(row, metric))
                    if v is not None:
                        values.append(float(v))
                line.append(f"{sum(values) / len(values):.3f}"
                            if values else "-")
            summary_rows.append(line)
    summary = Table(
        f"scenario:{spec.name}:summary",
        f"Per-variant means over {len(result.rows)} variant(s)",
        ["variant", "algorithm", "cells"] + [f"mean {m}" for m in metrics],
        summary_rows,
        notes=[f"variant axes: {', '.join(spec.sweep) or '(none)'}"],
    )
    return detail, summary


def adv_tables(result: AdvScenarioResult,
               frontier=None) -> Tuple[Table, Table]:
    """Render a search run as (per-chain detail, Pareto front) tables.

    The detail table lists every chain's best instance; the front
    table the non-dominated (size, score) points per pair — pass the
    run's updated :class:`~repro.adversarial.frontier.ParetoFrontier`,
    or omit it to build one from this run's rows alone.
    """
    from ..adversarial.frontier import ParetoFrontier

    spec = result.spec
    detail_rows: List[List[str]] = []
    for variant, rows in result.rows:
        for r in rows:
            detail_rows.append([
                variant.label, r.algorithm, r.graph, r.objective,
                f"{r.start_score:.3f}", f"{r.score:.3f}",
                f"{r.length_a:g}", f"{r.length_b:g}",
                str(r.num_nodes), str(r.num_edges),
                f"{r.accepted}/{r.steps}",
                ">".join(r.lineage[-4:]) or "-",
            ])
    detail = Table(
        f"adv:{spec.name}",
        spec.description or f"Adversarial search {spec.name}",
        ["variant", "pair", "chain", "objective", "seed score",
         "best score", "len(A)", "len(B)", "v", "e", "accepted",
         "lineage tail"],
        detail_rows,
        notes=["score: ratio = makespan(A)/makespan(B); slack = "
               "slack(B)-slack(A); sim = executed/predicted makespan "
               "of A — larger is always worse for A"],
    )

    if frontier is None:
        frontier = ParetoFrontier()
        frontier.update(result.all_rows())
    front_rows: List[List[str]] = []
    for pair in frontier.pairs():
        for p in frontier.front(pair):
            front_rows.append([pair, str(p.num_nodes), f"{p.score:.3f}",
                               p.objective, p.instance, p.chain])
    front = Table(
        f"adv:{spec.name}:frontier",
        f"Pareto front over instance size vs score "
        f"({len(frontier.pairs())} pair(s))",
        ["pair", "v", "score", "objective", "instance", "chain"],
        front_rows,
        notes=["non-dominated points only: no kept instance is both "
               "smaller and worse than another"],
    )
    return detail, front


@dataclass
class _OnlineRankRow:
    """Adapter relabelling an online row under its static algorithm."""

    algorithm: str
    graph: str
    length: float


def online_tables(result: ScenarioResult) -> Table:
    """Render the static-vs-online rank shift of a scenario run.

    For every variant carrying an ``online:`` block, each algorithm's
    mean makespan and paper-style average rank are compared between its
    static schedule and its event-driven execution under each
    information mode.  Ranks are computed *within* each group (static
    algorithms against each other, online counterparts of one mode
    against each other), so the shift isolates re-ranking: a positive
    shift means partial information hurts this algorithm more than its
    competitors.
    """
    from ..metrics.ranking import average_ranks
    from ..sim.online import IMODES

    spec = result.spec
    out_rows: List[List[str]] = []
    for variant, rows in result.rows:
        if not variant.online:
            continue
        statics = [a for a in variant.algorithms
                   if not a.lower().startswith("online:")]
        seed = int(variant.online.get("seed", 0))
        static_rank = dict(average_ranks(
            [r for r in rows if r.algorithm in statics], key="length"))
        by_alg: Dict[str, List[RunResult]] = {}
        for r in rows:
            by_alg.setdefault(r.algorithm, []).append(r)
        for imode in variant.online.get("imodes", IMODES):
            names = {alg: online_counterpart(alg, imode, seed)
                     for alg in statics}
            online_rank = dict(average_ranks(
                [_OnlineRankRow(alg, r.graph, r.length)
                 for alg, oname in names.items()
                 for r in by_alg.get(oname, [])], key="length"))
            for alg in statics:
                s_rows = by_alg.get(alg, [])
                o_rows = by_alg.get(names[alg], [])
                if not s_rows or not o_rows:
                    continue
                s_mean = sum(r.length for r in s_rows) / len(s_rows)
                o_mean = sum(r.length for r in o_rows) / len(o_rows)
                shift = online_rank[alg] - static_rank[alg]
                out_rows.append([
                    variant.label, alg, imode,
                    f"{s_mean:.1f}", f"{o_mean:.1f}",
                    f"{100.0 * (o_mean - s_mean) / s_mean:+.2f}",
                    f"{static_rank[alg]:.2f}", f"{online_rank[alg]:.2f}",
                    f"{shift:+.2f}",
                ])
    return Table(
        f"online:{spec.name}",
        f"Static vs online makespans per information mode "
        f"({spec.description or spec.name})",
        ["variant", "algorithm", "imode", "static", "online", "gap%",
         "rank(static)", "rank(online)", "shift"],
        out_rows,
        notes=["gap% is the mean makespan inflation of executing "
               "event-driven under the mode's estimates; ranks are "
               "within-group per-graph averages (1 = best), so under "
               "'exact' with zero noise online reproduces the static "
               "schedule and every gap and shift is 0"],
    )


def sim_tables(result: SimScenarioResult) -> Tuple[Table, Table]:
    """Render a sim run as (per-cell detail, robustness ranking) tables.

    The detail table lists every Monte-Carlo cell's distribution
    statistics; the ranking table shows, per variant, each algorithm's
    paper-style average rank by *predicted* vs *simulated mean*
    makespan and the shift between them — positive shift means the
    algorithm looks worse once its schedules actually execute.
    """
    from ..sim.robustness import robustness_ranking

    spec = result.spec
    detail_rows: List[List[str]] = []
    for variant, rows in result.rows:
        for r in rows:
            detail_rows.append([
                variant.label, r.graph, str(r.num_nodes), r.algorithm,
                f"{r.predicted:g}", f"{r.mean:.1f}", f"{r.std:.1f}",
                f"{r.p95:.1f}", f"{r.worst:.1f}",
                f"{r.mean_degradation_pct:+.2f}",
                f"{r.p95_degradation_pct:+.2f}", f"{r.slack:.3f}",
            ])
    trials = {r.trials for _, rows in result.rows for r in rows}
    detail = Table(
        f"sim:{spec.name}",
        spec.description or f"Simulated scenario {spec.name}",
        ["variant", "graph", "v", "algorithm", "predicted", "mean",
         "std", "p95", "worst", "degr%", "p95degr%", "slack"],
        detail_rows,
        notes=[f"{'/'.join(str(t) for t in sorted(trials)) or '?'} "
               "Monte-Carlo trial(s) per cell; degr% is change of the "
               "mean (p95) executed makespan vs the predicted one"],
    )

    ranking_rows: List[List[str]] = []
    for variant, rows in result.rows:
        for alg, pred, sim, shift in robustness_ranking(rows):
            ranking_rows.append([
                variant.label, alg, f"{pred:.2f}", f"{sim:.2f}",
                f"{shift:+.2f}",
            ])
    ranking = Table(
        f"sim:{spec.name}:ranking",
        f"Robustness ranking over {len(result.rows)} variant(s)",
        ["variant", "algorithm", "rank(predicted)", "rank(simulated)",
         "shift"],
        ranking_rows,
        notes=["average per-graph ranks (1 = best); positive shift = "
               "ranked worse under execution noise than the static "
               "comparison suggests"],
    )
    return detail, ranking

"""Declarative scenario specifications.

A *scenario* describes one task-graph scheduling experiment — which
graphs, which machine model, which algorithms, which metrics, and
optionally a sweep over any of those axes — as a plain JSON/TOML
document.  :func:`validate_spec` turns such a document into a
:class:`ScenarioSpec` after schema-checking every field with an
actionable, dotted-path error message; :mod:`repro.scenarios.compile`
then lowers the spec onto the parallel, persisted grid engine of
:mod:`repro.bench.parallel`.

Document shape
--------------
::

    {
      "name": "hetero-speeds",              # identifier, required
      "description": "...",                 # optional prose
      "graphs": {...},                      # required, see below
      "algorithms": ["MCP", {"class": "UNC"}],   # names and/or classes
      "machine": {                          # optional, paper defaults
        "bnp_procs": 8,                     # int or "unbounded"
        "bnp_speeds": [2, 2, 1, 1],         # heterogeneous BNP machine
        "apn": {"kind": "hypercube", "dim": 3, "bandwidth": 1.0},
        "validate": true
      },
      "metrics": ["length", "nsl"],         # subset of METRICS
      "simulate": {                         # optional: execution layer
        "trials": 100, "seed": 7, "network": "auto",
        "perturb": {"duration": {"dist": "lognormal", "param": 0.3}}
      },
      "adversarial": {                      # optional: instance search
        "pair": ["LAST", "MCP"], "objective": "ratio",
        "steps": 150, "chains": 4, "temperature": 0.02, "seed": 5
      },
      "online": {                           # optional: information modes
        "imodes": ["exact", "mean", "blind"], "seed": 9
      },
      "sweep": {"machine.bnp_procs": [2, 4, 8]}   # cartesian product
    }

``graphs`` selects either a named paper suite or a generator grid::

    {"suite": "rgnos", "full": false, "limit": 10}
    {"generator": "rgnos", "sizes": [50], "ccrs": [1.0],
     "parallelisms": [3], "seed": 7}
    {"generator": "rgbos", "sizes": [10, 20], "ccrs": [0.1, 10.0]}
    {"generator": "rgpos", "sizes": [50], "ccrs": [1.0], "procs": 8}
    {"generator": "cholesky", "dims": [8, 12], "ccr": 1.0}

``sweep`` maps dotted paths inside the document (``machine.*`` or
``graphs.*``) to lists of values; the compiled scenario is the
cartesian product of all axes, one grid-engine variant per point.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

__all__ = [
    "METRICS",
    "GENERATORS",
    "TOPOLOGY_KINDS",
    "SpecError",
    "ScenarioSpec",
    "validate_spec",
    "load_spec",
]

#: Metrics a scenario may select (columns of its result tables).
METRICS = ("length", "nsl", "procs_used", "runtime_s", "degradation")

#: Generator-grid families understood by ``graphs.generator``.
GENERATORS = ("rgnos", "rgbos", "rgpos", "cholesky")

#: Topology families understood by ``machine.apn.kind``.
TOPOLOGY_KINDS = ("hypercube", "ring", "chain", "star", "clique",
                  "mesh2d", "random")

_DEFAULT_METRICS = ("length", "nsl", "procs_used", "runtime_s")


class SpecError(ValueError):
    """A scenario document violates the schema.

    ``path`` is the dotted location of the offending field, and the
    message always embeds it — errors are meant to be actionable as a
    single line.
    """

    def __init__(self, path: str, message: str):
        self.path = path
        super().__init__(f"{path}: {message}" if path else message)


def _expect(cond: bool, path: str, message: str) -> None:
    if not cond:
        raise SpecError(path, message)


def _expect_mapping(value, path: str) -> Mapping:
    _expect(isinstance(value, Mapping), path,
            f"expected an object, got {type(value).__name__}")
    return value


def _expect_str(value, path: str) -> str:
    _expect(isinstance(value, str) and value != "", path,
            "expected a non-empty string")
    return value


def _expect_number(value, path: str, *, positive: bool = True) -> float:
    _expect(isinstance(value, (int, float)) and not isinstance(value, bool),
            path, f"expected a number, got {type(value).__name__}")
    if positive:
        _expect(value > 0, path, f"expected a positive number, got {value}")
    return float(value)


def _expect_int(value, path: str, *, minimum: int = 1) -> int:
    _expect(value is not None, path, "required key is missing")
    _expect(isinstance(value, int) and not isinstance(value, bool), path,
            f"expected an integer, got {type(value).__name__}")
    _expect(value >= minimum, path, f"expected an integer >= {minimum}, "
            f"got {value}")
    return value


def _expect_number_list(value, path: str, *, positive: bool = True,
                        integers: bool = False) -> List:
    _expect(value is not None, path, "required key is missing")
    _expect(isinstance(value, Sequence) and not isinstance(value, str),
            path, "expected a list")
    _expect(len(value) > 0, path, "expected a non-empty list")
    out = []
    for i, item in enumerate(value):
        if integers:
            out.append(_expect_int(item, f"{path}[{i}]"))
        else:
            out.append(_expect_number(item, f"{path}[{i}]",
                                      positive=positive))
    return out


# ----------------------------------------------------------------------
# field validators
# ----------------------------------------------------------------------
def _validate_graphs(data, path: str = "graphs") -> Dict[str, Any]:
    data = dict(_expect_mapping(data, path))
    has_suite = "suite" in data
    has_gen = "generator" in data
    _expect(has_suite != has_gen, path,
            "exactly one of 'suite' or 'generator' is required")
    out: Dict[str, Any] = {}
    if has_suite:
        from ..bench.suites import suite_names

        suite = _expect_str(data.pop("suite"), f"{path}.suite")
        _expect(suite in suite_names(), f"{path}.suite",
                f"unknown suite {suite!r}; expected one of "
                f"{', '.join(suite_names())}")
        out["suite"] = suite
        if "full" in data:
            full = data.pop("full")
            _expect(isinstance(full, bool), f"{path}.full",
                    "expected true or false")
            out["full"] = full
    else:
        gen = _expect_str(data.pop("generator"), f"{path}.generator")
        _expect(gen in GENERATORS, f"{path}.generator",
                f"unknown generator {gen!r}; expected one of "
                f"{', '.join(GENERATORS)}")
        out["generator"] = gen
        if gen in ("rgnos", "rgbos", "rgpos"):
            out["sizes"] = _expect_number_list(
                data.pop("sizes", None), f"{path}.sizes", integers=True)
            out["ccrs"] = _expect_number_list(
                data.pop("ccrs", None), f"{path}.ccrs")
        if gen == "rgnos":
            out["parallelisms"] = _expect_number_list(
                data.pop("parallelisms", None), f"{path}.parallelisms",
                integers=True)
        if gen == "rgpos":
            if "procs" in data:
                out["procs"] = _expect_int(data.pop("procs"),
                                           f"{path}.procs")
        if gen == "cholesky":
            out["dims"] = _expect_number_list(
                data.pop("dims", None), f"{path}.dims", integers=True)
            if "ccr" in data:
                out["ccr"] = _expect_number(data.pop("ccr"), f"{path}.ccr")
        if "seed" in data:
            seed = data.pop("seed")
            _expect(isinstance(seed, int) and not isinstance(seed, bool),
                    f"{path}.seed", "expected an integer")
            out["seed"] = seed
    if "limit" in data:
        out["limit"] = _expect_int(data.pop("limit"), f"{path}.limit")
    _expect(not data, path,
            f"unknown keys: {', '.join(sorted(map(str, data)))}")
    return out


def _validate_topology(data, path: str) -> Dict[str, Any]:
    data = dict(_expect_mapping(data, path))
    kind = _expect_str(data.pop("kind", None) or "", f"{path}.kind")
    _expect(kind in TOPOLOGY_KINDS, f"{path}.kind",
            f"unknown topology kind {kind!r}; expected one of "
            f"{', '.join(TOPOLOGY_KINDS)}")
    out: Dict[str, Any] = {"kind": kind}
    if kind == "hypercube":
        out["dim"] = _expect_int(data.pop("dim", None), f"{path}.dim",
                                 minimum=0)
    elif kind == "mesh2d":
        out["rows"] = _expect_int(data.pop("rows", None), f"{path}.rows")
        out["cols"] = _expect_int(data.pop("cols", None), f"{path}.cols")
    else:
        out["procs"] = _expect_int(data.pop("procs", None),
                                   f"{path}.procs")
        if kind == "random":
            if "extra_links" in data:
                out["extra_links"] = _expect_int(
                    data.pop("extra_links"), f"{path}.extra_links",
                    minimum=0)
            if "seed" in data:
                seed = data.pop("seed")
                _expect(isinstance(seed, int) and not isinstance(seed, bool),
                        f"{path}.seed", "expected an integer")
                out["seed"] = seed
    if "bandwidth" in data:
        out["bandwidth"] = _expect_number(data.pop("bandwidth"),
                                          f"{path}.bandwidth")
    _expect(not data, path,
            f"unknown keys: {', '.join(sorted(map(str, data)))}")
    return out


def _validate_machine(data, path: str = "machine") -> Dict[str, Any]:
    data = dict(_expect_mapping(data, path))
    out: Dict[str, Any] = {}
    if "bnp_procs" in data:
        procs = data.pop("bnp_procs")
        if procs in ("unbounded", None):
            out["bnp_procs"] = "unbounded"
        else:
            out["bnp_procs"] = _expect_int(procs, f"{path}.bnp_procs")
    if "bnp_speeds" in data:
        out["bnp_speeds"] = _expect_number_list(
            data.pop("bnp_speeds"), f"{path}.bnp_speeds")
        _expect(out.get("bnp_procs") != "unbounded",
                f"{path}.bnp_speeds",
                "speed factors imply a bounded machine of "
                f"{len(out['bnp_speeds'])} processors, which contradicts "
                "bnp_procs='unbounded' — drop one of the two")
        if out.get("bnp_procs") is not None:
            _expect(out["bnp_procs"] == len(out["bnp_speeds"]),
                    f"{path}.bnp_speeds",
                    f"{len(out['bnp_speeds'])} speed factors disagree "
                    f"with bnp_procs={out['bnp_procs']}")
    if "apn" in data:
        out["apn"] = _validate_topology(data.pop("apn"), f"{path}.apn")
    if "validate" in data:
        flag = data.pop("validate")
        _expect(isinstance(flag, bool), f"{path}.validate",
                "expected true or false")
        out["validate"] = flag
    _expect(not data, path,
            f"unknown keys: {', '.join(sorted(map(str, data)))}")
    return out


def _validate_algorithms(data, path: str = "algorithms") -> Tuple:
    from ..algorithms import get_scheduler, list_schedulers
    from ..algorithms.base import SCHEDULER_CLASSES

    _expect(isinstance(data, Sequence) and not isinstance(data, str),
            path, "expected a list of algorithm names (acronyms or "
            "'param:' component specs) and/or "
            '{"class": ...} / {"param": ...} selectors')
    _expect(len(data) > 0, path, "expected a non-empty list")
    items: List[Any] = []
    for i, item in enumerate(data):
        if isinstance(item, str):
            try:
                # Canonicalise through the registry: acronyms resolve
                # to their registered spelling, 'param:' specs to the
                # canonical axis order — one cache key per scheduler,
                # however the document spelled it.
                items.append(get_scheduler(item).name)
            except KeyError:
                raise SpecError(
                    f"{path}[{i}]",
                    f"unknown algorithm {item!r}; known: "
                    f"{', '.join(list_schedulers())} "
                    f"(or a 'param:' component spec)") from None
            except ValueError as exc:
                raise SpecError(f"{path}[{i}]", str(exc)) from None
        elif isinstance(item, Mapping) and "param" in item:
            from ..algorithms.components import expand_param_grid

            _expect(set(item) == {"param"}, f"{path}[{i}]",
                    "a component-space selector has exactly the "
                    "key 'param'")
            grid = item["param"]
            _expect(isinstance(grid, Mapping), f"{path}[{i}].param",
                    "expected a mapping of component axis -> value list")
            for axis, values in grid.items():
                _expect(isinstance(values, Sequence)
                        and not isinstance(values, str)
                        and all(isinstance(v, str) for v in values),
                        f"{path}[{i}].param.{axis}",
                        "expected a list of component names")
            try:
                specs = expand_param_grid(grid)
            except ValueError as exc:
                raise SpecError(f"{path}[{i}].param", str(exc)) from None
            items.append({"param": {str(axis).lower(): tuple(values)
                                    for axis, values in grid.items()}})
            del specs  # validated above; expansion happens at compile time
        elif isinstance(item, Mapping):
            klass = item.get("class")
            _expect(isinstance(klass, str)
                    and klass.upper() in SCHEDULER_CLASSES,
                    f"{path}[{i}].class",
                    f"expected one of {', '.join(SCHEDULER_CLASSES)}")
            _expect(set(item) == {"class"}, f"{path}[{i}]",
                    "a class selector has exactly the key 'class'")
            items.append({"class": klass.upper()})
        else:
            raise SpecError(f"{path}[{i}]",
                            "expected an algorithm name, a "
                            '{"class": ...} selector or a '
                            '{"param": ...} component grid')
    return tuple(items)


def expand_algorithms(items: Sequence) -> Tuple[str, ...]:
    """Resolve names + class/param selectors to a deduplicated tuple.

    ``{"param": {...}}`` grids expand to the cartesian product of
    their component axes, each combination under its canonical
    ``param:`` name — so a grid cell is cached exactly like the same
    scheduler listed explicitly.
    """
    from ..algorithms import list_schedulers

    out: List[str] = []
    for item in items:
        if isinstance(item, str):
            names = [item]
        elif "param" in item:
            from ..algorithms.components import expand_param_grid

            names = [spec.canonical()
                     for spec in expand_param_grid(item["param"])]
        else:
            names = list_schedulers(item["class"])
        for name in names:
            if name not in out:
                out.append(name)
    return tuple(out)


def _validate_metrics(data, path: str = "metrics") -> Tuple[str, ...]:
    _expect(isinstance(data, Sequence) and not isinstance(data, str),
            path, "expected a list of metric names")
    _expect(len(data) > 0, path, "expected a non-empty list")
    out = []
    for i, item in enumerate(data):
        _expect(isinstance(item, str) and item in METRICS, f"{path}[{i}]",
                f"unknown metric {item!r}; expected one of "
                f"{', '.join(METRICS)}")
        if item not in out:
            out.append(item)
    return tuple(out)


def _sim_networks() -> Tuple[str, ...]:
    """Backend names, from the sim package's single source of truth."""
    from ..sim.netmodel import NETWORK_KINDS

    return NETWORK_KINDS


def _validate_simulate(data, path: str = "simulate") -> Dict[str, Any]:
    """Schema-check a ``simulate:`` block (the sim-sweep axis).

    The block configures the discrete-event execution layer
    (:mod:`repro.sim`): Monte-Carlo trial count and seed, the transport
    backend, and up to three noise sources, each a mean-1 distribution
    ``{"dist": "uniform"|"normal"|"lognormal", "param": x}``.
    """
    data = dict(_expect_mapping(data, path))
    out: Dict[str, Any] = {}
    if "trials" in data:
        out["trials"] = _expect_int(data.pop("trials"), f"{path}.trials")
    if "seed" in data:
        seed = data.pop("seed")
        _expect(isinstance(seed, int) and not isinstance(seed, bool)
                and seed >= 0, f"{path}.seed",
                "expected a non-negative integer (numpy seed streams "
                "reject negative seeds)")
        out["seed"] = seed
    if "network" in data:
        net = _expect_str(data.pop("network"), f"{path}.network")
        kinds = _sim_networks()
        _expect(net in kinds, f"{path}.network",
                f"unknown network {net!r}; expected one of "
                f"{', '.join(kinds)}")
        out["network"] = net
    for key in ("scale", "latency"):
        if key in data:
            out[key] = _expect_number(data.pop(key), f"{path}.{key}",
                                      positive=False)
            _expect(out[key] >= 0, f"{path}.{key}",
                    f"expected a number >= 0, got {out[key]}")
            # Only the fixed-delay backend consumes these; accepting
            # them elsewhere would silently simulate a different model.
            _expect(out.get("network") == "fixed", f"{path}.{key}",
                    "only applies to network: 'fixed' — set it or drop "
                    f"'{key}'")
    if "perturb" in data:
        perturb = dict(_expect_mapping(data.pop("perturb"),
                                       f"{path}.perturb"))
        from ..sim.perturb import perturbation_from_dict

        try:
            perturbation_from_dict(perturb)
        except ValueError as exc:
            raise SpecError(f"{path}.perturb", str(exc)) from None
        out["perturb"] = perturb
    _expect(not data, path,
            f"unknown keys: {', '.join(sorted(map(str, data)))}")
    return out


def _validate_adversarial(data, path: str = "adversarial"
                          ) -> Dict[str, Any]:
    """Schema-check an ``adversarial:`` block (the instance-search axis).

    The block configures the PISA-style search layer
    (:mod:`repro.adversarial`): the ordered scheduler pair whose gap is
    maximised, the objective kind, and the annealing knobs.  The
    scenario's ``graphs`` axis supplies the chains' seed instances.
    """
    from ..adversarial.mutate import mutation_names
    from ..adversarial.objective import OBJECTIVES
    from ..algorithms import get_scheduler, list_schedulers

    data = dict(_expect_mapping(data, path))
    pair = data.pop("pair", None)
    _expect(isinstance(pair, Sequence) and not isinstance(pair, str)
            and len(pair) == 2, f"{path}.pair",
            "expected a list of exactly two algorithm names")
    names = []
    for i, item in enumerate(pair):
        name = _expect_str(item, f"{path}.pair[{i}]")
        try:
            names.append(get_scheduler(name).name)
        except KeyError:
            raise SpecError(
                f"{path}.pair[{i}]",
                f"unknown algorithm {name!r}; known: "
                f"{', '.join(list_schedulers())} "
                f"(or a 'param:' component spec)") from None
        except ValueError as exc:
            raise SpecError(f"{path}.pair[{i}]", str(exc)) from None
    klasses = {get_scheduler(n).klass for n in names}
    _expect(len(klasses) == 1, f"{path}.pair",
            "the pair must come from one class (BNP/UNC/APN) — "
            f"{names[0]} and {names[1]} use different machine models")
    out: Dict[str, Any] = {"pair": names}
    if "objective" in data:
        obj = _expect_str(data.pop("objective"), f"{path}.objective")
        _expect(obj in OBJECTIVES, f"{path}.objective",
                f"unknown objective {obj!r}; expected one of "
                f"{', '.join(OBJECTIVES)}")
        out["objective"] = obj
    for key in ("steps", "chains", "trials"):
        if key in data:
            out[key] = _expect_int(data.pop(key), f"{path}.{key}")
    if "temperature" in data:
        out["temperature"] = _expect_number(
            data.pop("temperature"), f"{path}.temperature", positive=False)
        _expect(out["temperature"] >= 0, f"{path}.temperature",
                f"expected a number >= 0, got {out['temperature']}")
    if "cooling" in data:
        out["cooling"] = _expect_number(data.pop("cooling"),
                                        f"{path}.cooling")
        _expect(out["cooling"] <= 1, f"{path}.cooling",
                f"expected a number in (0, 1], got {out['cooling']}")
    if "noise" in data:
        out["noise"] = _expect_number(data.pop("noise"), f"{path}.noise")
    if "seed" in data:
        seed = data.pop("seed")
        _expect(isinstance(seed, int) and not isinstance(seed, bool)
                and seed >= 0, f"{path}.seed",
                "expected a non-negative integer")
        out["seed"] = seed
    if "ops" in data:
        ops = data.pop("ops")
        _expect(isinstance(ops, Sequence) and not isinstance(ops, str)
                and len(ops) > 0, f"{path}.ops",
                "expected a non-empty list of mutation names")
        known = mutation_names()
        for i, op in enumerate(ops):
            _expect(isinstance(op, str) and op in known,
                    f"{path}.ops[{i}]",
                    f"unknown mutation {op!r}; expected one of "
                    f"{', '.join(known)}")
        out["ops"] = list(dict.fromkeys(ops))
    _expect(not data, path,
            f"unknown keys: {', '.join(sorted(map(str, data)))}")
    return out


def _validate_online(data, path: str = "online") -> Dict[str, Any]:
    """Schema-check an ``online:`` block (the information-mode axis).

    The block asks the scenario to re-run every (component-expressible)
    algorithm *event-driven* under partial information
    (:mod:`repro.sim.online`): each selected information mode adds the
    algorithms' ``online:`` counterparts to the grid beside the static
    originals, so one run prices what blind/mean/user estimates cost.
    """
    from ..sim.online import IMODES

    data = dict(_expect_mapping(data, path))
    out: Dict[str, Any] = {}
    if "imodes" in data:
        imodes = data.pop("imodes")
        _expect(isinstance(imodes, Sequence) and not isinstance(imodes, str)
                and len(imodes) > 0, f"{path}.imodes",
                "expected a non-empty list of information modes")
        seen = []
        for i, item in enumerate(imodes):
            _expect(isinstance(item, str) and item.lower() in IMODES,
                    f"{path}.imodes[{i}]",
                    f"unknown information mode {item!r}; expected one of "
                    f"{', '.join(IMODES)}")
            if item.lower() not in seen:
                seen.append(item.lower())
        out["imodes"] = seen
    if "seed" in data:
        seed = data.pop("seed")
        _expect(isinstance(seed, int) and not isinstance(seed, bool)
                and seed >= 0, f"{path}.seed",
                "expected a non-negative integer")
        out["seed"] = seed
    _expect(not data, path,
            f"unknown keys: {', '.join(sorted(map(str, data)))}")
    return out


_SWEEPABLE_ROOTS = ("machine", "graphs", "simulate", "adversarial",
                    "online")


def _validate_sweep(data, path: str = "sweep") -> Dict[str, Tuple]:
    data = _expect_mapping(data, path)
    out: Dict[str, Tuple] = {}
    for key, values in data.items():
        kpath = f"{path}[{key!r}]"
        roots = "/".join(f"'{r}'" for r in _SWEEPABLE_ROOTS)
        _expect(isinstance(key, str) and key.split(".")[0]
                in _SWEEPABLE_ROOTS, kpath,
                f"sweep paths must start with one of {roots} "
                "(dotted or bare)")
        _expect(isinstance(values, Sequence) and not isinstance(values, str),
                kpath, "expected a list of values to sweep")
        _expect(len(values) > 0, kpath, "expected a non-empty list")
        out[key] = tuple(values)
    return out


# ----------------------------------------------------------------------
# the spec object
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """A validated scenario document.

    Construct via :func:`validate_spec`; every field is already
    schema-checked and canonicalised.  :meth:`to_dict` emits the
    canonical document — ``validate_spec(spec.to_dict())`` round-trips.
    """

    name: str
    graphs: Mapping[str, Any]
    algorithms: Tuple  # names and/or {"class": ...} selectors, as given
    description: str = ""
    machine: Mapping[str, Any] = field(default_factory=dict)
    metrics: Tuple[str, ...] = _DEFAULT_METRICS
    sweep: Mapping[str, Tuple] = field(default_factory=dict)
    simulate: Mapping[str, Any] = field(default_factory=dict)
    adversarial: Mapping[str, Any] = field(default_factory=dict)
    online: Mapping[str, Any] = field(default_factory=dict)

    @property
    def algorithm_names(self) -> Tuple[str, ...]:
        """The expanded, deduplicated algorithm selection."""
        return expand_algorithms(self.algorithms)

    def num_variants(self) -> int:
        """Size of the sweep's cartesian product (1 without a sweep)."""
        n = 1
        for values in self.sweep.values():
            n *= len(values)
        return n

    def to_dict(self) -> Dict[str, Any]:
        """The canonical JSON-compatible document."""
        doc: Dict[str, Any] = {"name": self.name}
        if self.description:
            doc["description"] = self.description
        doc["graphs"] = _plain(self.graphs)
        doc["algorithms"] = _plain(list(self.algorithms))
        if self.machine:
            doc["machine"] = _plain(self.machine)
        doc["metrics"] = list(self.metrics)
        if self.simulate:
            doc["simulate"] = _plain(self.simulate)
        if self.adversarial:
            doc["adversarial"] = _plain(self.adversarial)
        if self.online:
            doc["online"] = _plain(self.online)
        if self.sweep:
            doc["sweep"] = {k: _plain(list(v))
                            for k, v in self.sweep.items()}
        return doc


def _plain(value):
    """Deep-copy to plain dict/list/scalar JSON types."""
    if isinstance(value, Mapping):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def validate_spec(data: Mapping) -> ScenarioSpec:
    """Schema-check a scenario document; raises :class:`SpecError`.

    Sweep axes are validated point-by-point: every variant of the
    cartesian product must itself pass the schema, so a bad value deep
    inside a sweep list is reported before anything runs.
    """
    data = dict(_expect_mapping(data, ""))
    name = _expect_str(data.pop("name", None) or "", "name")
    _expect(all(c.isalnum() or c in "-_" for c in name), "name",
            f"{name!r} may only contain letters, digits, '-' and '_'")
    description = data.pop("description", "")
    _expect(isinstance(description, str), "description",
            "expected a string")
    _expect("graphs" in data, "graphs", "required key is missing")
    graphs = _validate_graphs(data.pop("graphs"))
    _expect("algorithms" in data, "algorithms", "required key is missing")
    algorithms = _validate_algorithms(data.pop("algorithms"))
    machine = (_validate_machine(data.pop("machine"))
               if "machine" in data else {})
    metrics = (_validate_metrics(data.pop("metrics"))
               if "metrics" in data else _DEFAULT_METRICS)
    simulate = (_validate_simulate(data.pop("simulate"))
                if "simulate" in data else {})
    adversarial = (_validate_adversarial(data.pop("adversarial"))
                   if "adversarial" in data else {})
    online = (_validate_online(data.pop("online"))
              if "online" in data else {})
    sweep = (_validate_sweep(data.pop("sweep"))
             if "sweep" in data else {})
    _expect(not data, "",
            f"unknown top-level keys: {', '.join(sorted(map(str, data)))}")
    spec = ScenarioSpec(
        name=name, graphs=graphs, algorithms=algorithms,
        description=description, machine=machine, metrics=metrics,
        sweep=sweep, simulate=simulate, adversarial=adversarial,
        online=online,
    )
    _check_variants(spec)
    _check_speed_algorithms(spec)
    _check_online_algorithms(spec)
    return spec


def apply_override(doc: Dict[str, Any], path: str, value) -> None:
    """Set ``doc[path] = value`` through a dotted path, in place."""
    keys = path.split(".")
    target = doc
    for key in keys[:-1]:
        nxt = target.get(key)
        if not isinstance(nxt, dict):
            nxt = {}
            target[key] = nxt
        target = nxt
    target[keys[-1]] = _plain(value)


def sweep_points(spec: ScenarioSpec) -> List[Dict[str, Any]]:
    """The sweep's cartesian product as override dicts, in axis order."""
    points: List[Dict[str, Any]] = [{}]
    for key, values in spec.sweep.items():
        points = [
            {**point, key: value}
            for point in points
            for value in values
        ]
    return points


def variant_document(spec: ScenarioSpec,
                     overrides: Mapping[str, Any]) -> Dict[str, Any]:
    """The spec document with one sweep point applied (sweep removed)."""
    doc = spec.to_dict()
    doc.pop("sweep", None)
    for path, value in overrides.items():
        apply_override(doc, path, value)
    return doc


def _check_variants(spec: ScenarioSpec) -> None:
    """Validate every sweep point's document up front."""
    for overrides in sweep_points(spec):
        if not overrides:
            continue
        doc = variant_document(spec, overrides)
        try:
            validate_spec(doc)  # runs every per-variant check too
        except SpecError as exc:
            label = ", ".join(f"{k}={json.dumps(_plain(v))}"
                              for k, v in overrides.items())
            raise SpecError(
                "sweep", f"variant ({label}) is invalid — {exc}") from None


def _check_speed_algorithms(spec: ScenarioSpec) -> None:
    """Heterogeneous speeds only make sense for BNP algorithms."""
    from ..algorithms import get_scheduler

    if not spec.machine.get("bnp_speeds"):
        return
    non_bnp = [n for n in spec.algorithm_names
               if get_scheduler(n).klass != "BNP"]
    _expect(not non_bnp, "machine.bnp_speeds",
            "heterogeneous speeds apply only to BNP algorithms, but the "
            f"scenario also selects {', '.join(non_bnp)} — drop them or "
            "the speeds")


def _check_online_algorithms(spec: ScenarioSpec) -> None:
    """An ``online:`` block needs component-expressible algorithms.

    Only schedulers with a four-axis component decomposition (the six
    named BNP designs and every ``param:`` spec) have online
    counterparts; explicit ``online:`` names are rejected because the
    block would duplicate them per information mode.
    """
    if not spec.online:
        return
    from ..algorithms.components import BNP_SPECS

    bad = [n for n in spec.algorithm_names
           if n.upper() not in BNP_SPECS
           and not n.lower().startswith("param:")]
    _expect(not bad, "online",
            "online counterparts exist only for component-expressible "
            "schedulers (the named BNP designs and 'param:' specs), but "
            f"the scenario also selects {', '.join(bad)} — drop them or "
            "the online block")


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def load_spec(source: str) -> ScenarioSpec:
    """Load a scenario from a file path or a registry name.

    ``*.json`` is parsed with :mod:`json`, ``*.toml`` with the stdlib
    :mod:`tomllib`; anything that is not an existing file is treated as
    a registry name (see :mod:`repro.scenarios.registry`).
    """
    if os.path.exists(source):
        if source.endswith(".toml"):
            try:
                import tomllib
            except ImportError:  # pragma: no cover - python < 3.11
                try:
                    import tomli as tomllib  # type: ignore[no-redef]
                except ImportError:
                    raise SpecError(
                        "", f"{source}: TOML specs need Python >= 3.11 "
                        "(stdlib tomllib) or the 'tomli' backport; "
                        "use JSON instead") from None
            with open(source, "rb") as fh:
                try:
                    data = tomllib.load(fh)
                except tomllib.TOMLDecodeError as exc:
                    raise SpecError("", f"{source}: invalid TOML "
                                    f"({exc})") from None
        else:
            with open(source) as fh:
                try:
                    data = json.load(fh)
                except json.JSONDecodeError as exc:
                    raise SpecError("", f"{source}: invalid JSON "
                                    f"({exc})") from None
        return validate_spec(data)
    from .registry import get_scenario, scenario_names

    try:
        return get_scenario(source)
    except KeyError:
        raise SpecError(
            "", f"{source!r} is neither a spec file nor a registered "
            f"scenario; registered: {', '.join(scenario_names())}"
        ) from None

"""Ready-made scenarios beyond the paper's fixed grid.

Each entry is a plain scenario document (see
:mod:`repro.scenarios.spec`) registered under a name the CLI accepts
directly::

    python -m repro.bench scenario run hetero-speeds --jobs 4

The registry deliberately explores axes the paper holds fixed:
heterogeneous processor speeds, link bandwidth, interconnect shape,
graph width/depth, machine size, CCR extremes and a scalability ladder
past 1000 nodes.  All documents are validated on access, so the
registry can never hand out a spec the schema would reject.
"""

from __future__ import annotations

from typing import Dict, List

from .spec import ScenarioSpec, validate_spec

__all__ = ["SCENARIOS", "scenario_names", "get_scenario"]


SCENARIOS: Dict[str, dict] = {
    # 1 — heterogeneous processor speeds (uniform/related machines).
    "hetero-speeds": {
        "name": "hetero-speeds",
        "description": "BNP algorithms on an 8-processor machine whose "
                       "speed profile degrades from uniform to a single "
                       "fast processor",
        "graphs": {"generator": "rgnos", "sizes": [40, 80],
                   "ccrs": [1.0], "parallelisms": [3], "seed": 11},
        "algorithms": [{"class": "BNP"}],
        "machine": {"bnp_speeds": [1, 1, 1, 1, 1, 1, 1, 1]},
        "metrics": ["length", "nsl", "procs_used", "runtime_s"],
        "sweep": {"machine.bnp_speeds": [
            [1, 1, 1, 1, 1, 1, 1, 1],
            [2, 2, 2, 2, 1, 1, 1, 1],
            [4, 2, 2, 1, 1, 1, 1, 1],
            [8, 1, 1, 1, 1, 1, 1, 1],
        ]},
    },
    # 2 — link bandwidth sweep on the paper's hypercube.
    "bandwidth-sweep": {
        "name": "bandwidth-sweep",
        "description": "APN algorithms on the 8-processor hypercube as "
                       "link bandwidth shrinks and grows",
        "graphs": {"generator": "rgnos", "sizes": [40],
                   "ccrs": [1.0], "parallelisms": [3], "seed": 23},
        "algorithms": [{"class": "APN"}],
        "machine": {"apn": {"kind": "hypercube", "dim": 3}},
        "metrics": ["length", "nsl", "runtime_s"],
        "sweep": {"machine.apn.bandwidth": [0.25, 0.5, 1.0, 2.0, 4.0]},
    },
    # 3 — interconnect shape at fixed size.
    "topology-zoo": {
        "name": "topology-zoo",
        "description": "APN algorithms across 8-processor interconnects "
                       "from chain to clique",
        "graphs": {"generator": "rgnos", "sizes": [40],
                   "ccrs": [1.0, 10.0], "parallelisms": [3], "seed": 31},
        "algorithms": [{"class": "APN"}],
        "metrics": ["length", "nsl", "runtime_s"],
        "sweep": {"machine.apn": [
            {"kind": "chain", "procs": 8},
            {"kind": "ring", "procs": 8},
            {"kind": "star", "procs": 8},
            {"kind": "mesh2d", "rows": 2, "cols": 4},
            {"kind": "hypercube", "dim": 3},
            {"kind": "clique", "procs": 8},
        ]},
    },
    # 4 — graph shape: chains vs bushy graphs at constant size.
    "graph-shapes": {
        "name": "graph-shapes",
        "description": "UNC and BNP algorithms on deep (parallelism 1) "
                       "through wide (parallelism 5) RGNOS graphs",
        "graphs": {"generator": "rgnos", "sizes": [60],
                   "ccrs": [1.0], "parallelisms": [3], "seed": 43},
        "algorithms": [{"class": "UNC"}, {"class": "BNP"}],
        "metrics": ["length", "nsl", "procs_used"],
        "sweep": {"graphs.parallelisms": [[1], [2], [3], [5]]},
    },
    # 5 — scalability ladder past the paper's 500-node ceiling.
    "scalability-ladder": {
        "name": "scalability-ladder",
        "description": "Fast heuristics on RGNOS graphs from 200 to "
                       "1200 nodes — runtime scaling beyond the paper "
                       "grid",
        "graphs": {"generator": "rgnos", "sizes": [200, 400, 800, 1200],
                   "ccrs": [1.0], "parallelisms": [3], "seed": 53},
        "algorithms": ["HLFET", "ISH", "MCP", "LC", "EZ", "DSC"],
        "metrics": ["length", "nsl", "runtime_s"],
    },
    # 6 — bounded machine size ladder for the BNP class.
    "processor-ladder": {
        "name": "processor-ladder",
        "description": "BNP algorithms as the bounded machine grows "
                       "from 2 processors to effectively unlimited",
        "graphs": {"generator": "rgnos", "sizes": [60],
                   "ccrs": [1.0], "parallelisms": [3], "seed": 61},
        "algorithms": [{"class": "BNP"}],
        "metrics": ["length", "nsl", "procs_used"],
        "sweep": {"machine.bnp_procs": [2, 4, 8, 16, "unbounded"]},
    },
    # 7 — CCR far beyond the paper's 0.1..10 range.
    "ccr-extremes": {
        "name": "ccr-extremes",
        "description": "UNC and BNP algorithms on RGBOS-style graphs "
                       "at communication ratios beyond the paper's "
                       "0.1-10 range",
        "graphs": {"generator": "rgbos", "sizes": [20, 30],
                   "ccrs": [0.02, 0.1, 10.0, 25.0], "seed": 71},
        "algorithms": [{"class": "UNC"}, {"class": "BNP"}],
        "metrics": ["length", "nsl", "procs_used"],
    },
    # 8 — contention stress: starved chain vs overprovisioned clique.
    "contention-stress": {
        "name": "contention-stress",
        "description": "APN algorithms under worst-case (slow chain) "
                       "and best-case (fast clique) interconnects",
        "graphs": {"generator": "rgnos", "sizes": [40],
                   "ccrs": [10.0], "parallelisms": [4], "seed": 83},
        "algorithms": [{"class": "APN"}],
        "metrics": ["length", "nsl", "runtime_s"],
        "sweep": {"machine.apn": [
            {"kind": "chain", "procs": 8, "bandwidth": 0.5},
            {"kind": "chain", "procs": 8},
            {"kind": "clique", "procs": 8},
            {"kind": "clique", "procs": 8, "bandwidth": 4.0},
        ]},
    },
    # 9 — constructed optima with degradation, off the paper grid.
    "rgpos-degradation": {
        "name": "rgpos-degradation",
        "description": "BNP degradation from the constructed RGPOS "
                       "optimum at sizes between the paper's steps",
        "graphs": {"generator": "rgpos", "sizes": [75, 125],
                   "ccrs": [0.5, 2.0], "procs": 8, "seed": 97},
        "algorithms": [{"class": "BNP"}],
        "machine": {"bnp_procs": 8},
        "metrics": ["length", "degradation", "procs_used"],
    },
    # 10 — Monte-Carlo robustness of the BNP class (the nightly sim run).
    "robustness-bnp": {
        "name": "robustness-bnp",
        "description": "Monte-Carlo execution of BNP schedules under "
                       "lognormal duration noise across the paper's CCR "
                       "range — does the predicted ranking survive "
                       "runtime jitter?",
        "graphs": {"generator": "rgnos", "sizes": [40, 80],
                   "ccrs": [0.1, 1.0, 10.0], "parallelisms": [3],
                   "seed": 101},
        "algorithms": [{"class": "BNP"}],
        "metrics": ["length", "nsl"],
        "simulate": {"trials": 100, "seed": 7,
                     "perturb": {"duration": {"dist": "lognormal",
                                              "param": 0.3}}},
    },
    # 11 — noise-level sweep: how fast does each BNP ranking decay?
    "noise-ladder": {
        "name": "noise-ladder",
        "description": "BNP robustness as lognormal duration noise grows "
                       "from none to sigma 0.5, with per-processor speed "
                       "jitter at the top rung",
        "graphs": {"generator": "rgnos", "sizes": [60],
                   "ccrs": [1.0], "parallelisms": [3], "seed": 113},
        "algorithms": [{"class": "BNP"}],
        "metrics": ["length"],
        "simulate": {"trials": 50, "seed": 7},
        "sweep": {"simulate.perturb": [
            {},
            {"duration": {"dist": "lognormal", "param": 0.1}},
            {"duration": {"dist": "lognormal", "param": 0.3}},
            {"duration": {"dist": "lognormal", "param": 0.5},
             "speed": {"dist": "uniform", "param": 0.2}},
        ]},
    },
    # 12 — adversarial instance search over a BNP pair (PISA-style).
    "adversarial-bnp": {
        "name": "adversarial-bnp",
        "description": "Search 50-node graph space for instances where "
                       "LAST's schedule is maximally longer than MCP's "
                       "— the worst-case gap behind the paper's "
                       "average-case BNP ranking",
        "graphs": {"generator": "rgnos", "sizes": [50],
                   "ccrs": [1.0], "parallelisms": [3], "seed": 131},
        "algorithms": ["LAST", "MCP"],
        "metrics": ["length", "nsl"],
        "adversarial": {"pair": ["LAST", "MCP"], "objective": "ratio",
                        "steps": 150, "chains": 4,
                        "temperature": 0.02, "cooling": 0.97, "seed": 5},
    },
    # 13 — adversarial instance search over an APN pair.
    "adversarial-apn": {
        "name": "adversarial-apn",
        "description": "Search small-graph space for instances where "
                       "BU loses maximally to BSA on the hypercube — "
                       "per-message network walks keep the instances "
                       "small",
        "graphs": {"generator": "rgnos", "sizes": [18],
                   "ccrs": [1.0], "parallelisms": [3], "seed": 137},
        "algorithms": ["BU", "BSA"],
        "metrics": ["length", "nsl"],
        "adversarial": {"pair": ["BU", "BSA"], "objective": "ratio",
                        "steps": 60, "chains": 2,
                        "temperature": 0.02, "cooling": 0.97, "seed": 7},
    },
    # 14 — online execution under partial information.
    "online-gap": {
        "name": "online-gap",
        "description": "The six BNP designs re-run event-driven under "
                       "partial information: what do blind, mean and "
                       "noisy-user estimates cost against the static "
                       "full-information schedule, and does the "
                       "paper's ranking survive?",
        "graphs": {"generator": "rgnos", "sizes": [40],
                   "ccrs": [1.0, 10.0], "parallelisms": [3], "seed": 163},
        "algorithms": [{"class": "BNP"}],
        "machine": {"bnp_procs": 8},
        "metrics": ["length", "nsl"],
        "online": {"imodes": ["exact", "blind", "mean", "user"],
                   "seed": 9},
    },
    # 15 — the nightly reduced full grid (all 15 algorithms, RGNOS).
    "nightly-grid": {
        "name": "nightly-grid",
        "description": "Reduced paper-style grid: all 15 algorithms on "
                       "the reduced RGNOS suite — the nightly CI "
                       "end-to-end run",
        "graphs": {"suite": "rgnos", "full": False},
        "algorithms": [{"class": "UNC"}, {"class": "BNP"},
                       {"class": "APN"}],
        "metrics": ["length", "nsl", "procs_used", "runtime_s"],
    },
    # 16 — the component space: synthesized schedulers vs the paper's six.
    "component-grid": {
        "name": "component-grid",
        "description": "Cartesian sweep of list-scheduler components "
                       "(priority x ready pool x processor selector x "
                       "insertion) beside the six hand-written BNP "
                       "designs they generalise",
        "graphs": {"generator": "rgnos", "sizes": [30],
                   "ccrs": [1.0], "parallelisms": [3], "seed": 151},
        "algorithms": [
            {"class": "BNP"},
            # Decoupled selectors: 4 priorities x 2 pools x 2 greedy
            # rules x 3 insertion policies = 48 combinations.
            {"param": {"prio": ["slevel", "blevel", "alap", "btlevel"],
                       "ready": ["prio", "fifo"],
                       "proc": ["est", "eft"],
                       "insert": ["off", "on", "hole"]}},
            # Coupled pair-scan selectors (pool order is irrelevant,
            # so only the default pool): 16 more combinations.
            {"param": {"prio": ["slevel", "alap", "btlevel", "dnode"],
                       "proc": ["etf", "dls"],
                       "insert": ["off", "on"]}},
        ],
        "machine": {"bnp_procs": 8},
        "metrics": ["length", "nsl", "procs_used", "runtime_s"],
    },
}


def scenario_names() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    """The registered scenario as a validated spec; KeyError if absent."""
    return validate_spec(SCENARIOS[name])

"""Synthetic traffic storms for the scheduling service.

A *storm* is a seeded, fully reproducible stream of scheduling
requests: a small population of graph templates (RGNOS-style random
graphs) hit by a Zipf-skewed request mix with exponential
interarrivals.  Skew is the point — real request traffic concentrates
on a few hot graphs, which is exactly what the service's
fingerprint-keyed schedule cache exploits, so the storm is the natural
workload for measuring cold-vs-warm latency (``repro-bench loadtest``)
and for the CI service-smoke gate.

Everything is derived from :class:`StormConfig` through
:func:`repro.core.rng.derive_rng`, so two storms with equal
fingerprints are request-for-request identical — arrival times
included — which is what makes RPS/p50/p99 tables rankable across
runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.rng import derive_rng
from ..generators.random_graphs import rgnos_graph

__all__ = ["StormConfig", "StormRequest", "make_storm", "storm_bodies"]


@dataclass(frozen=True)
class StormConfig:
    """Full description of one traffic storm (all fields fingerprinted).

    ``rate`` is the mean arrival rate in requests/second (exponential
    interarrivals); ``skew`` the Zipf exponent of template popularity
    (0 = uniform, larger = hotter hot set); ``templates`` the number of
    distinct (graph, spec) request templates, cycling over ``sizes``
    and ``specs``.  ``procs`` is the machine every request asks for.
    """

    requests: int = 200
    templates: int = 8
    sizes: Tuple[int, ...] = (150, 250, 400)
    ccr: float = 1.0
    parallelism: int = 3
    specs: Tuple[str, ...] = ("mcp", "dls", "param:prio=blevel,proc=est")
    procs: int = 8
    rate: float = 500.0
    skew: float = 1.1
    seed: int = 0

    def fingerprint(self) -> str:
        """Stable identity of the storm: every field participates."""
        return (f"storm:req={self.requests},tpl={self.templates},"
                f"sizes={','.join(str(s) for s in self.sizes)},"
                f"ccr={self.ccr:g},par={self.parallelism},"
                f"specs={'|'.join(self.specs)},procs={self.procs},"
                f"rate={self.rate:g},skew={self.skew:g},seed={self.seed}")


@dataclass(frozen=True)
class StormRequest:
    """One request of the storm, ready to POST.

    ``arrival`` is seconds since storm start; ``template`` the index of
    the (graph, spec) template this request repeats; ``body`` the JSON
    payload for ``POST /schedule``.
    """

    arrival: float
    template: int
    body: Dict


def _template_bodies(config: StormConfig) -> List[Dict]:
    """The distinct request payloads, one per template."""
    bodies: List[Dict] = []
    for t in range(config.templates):
        size = config.sizes[t % len(config.sizes)]
        spec = config.specs[t % len(config.specs)]
        graph = rgnos_graph(
            size, config.ccr, config.parallelism,
            seed=derive_rng(config.seed, "storm", "template", t),
            name=f"storm-t{t}")
        bodies.append({
            "graph": {
                "name": graph.name,
                "weights": [float(w) for w in graph.weights],
                "edges": [[int(u), int(v), float(c)]
                          for u, v, c in graph.edges()],
            },
            "machine": {"procs": config.procs},
            "spec": spec,
        })
    return bodies


def storm_bodies(config: StormConfig) -> List[Dict]:
    """Just the distinct template payloads (e.g. for cache warm-up)."""
    return _template_bodies(config)


def make_storm(config: StormConfig) -> List[StormRequest]:
    """Expand ``config`` into its request stream, sorted by arrival.

    Popularity is Zipf over templates (template 0 hottest) and
    interarrivals exponential with mean ``1 / rate`` — both drawn from
    streams keyed on the config seed, so equal configs give identical
    storms.
    """
    bodies = _template_bodies(config)
    rng = derive_rng(config.seed, "storm", config.fingerprint())
    weights = np.array([1.0 / (t + 1) ** config.skew
                        for t in range(config.templates)])
    weights /= weights.sum()
    picks = rng.choice(config.templates, size=config.requests, p=weights)
    gaps = rng.exponential(1.0 / config.rate, size=config.requests)
    arrivals = np.cumsum(gaps)
    return [StormRequest(arrival=float(arrivals[i]),
                         template=int(picks[i]),
                         body=bodies[int(picks[i])])
            for i in range(config.requests)]

"""Declarative scenario engine: describe an experiment, sweep it.

The paper evaluates a fixed grid of five suites; this package turns the
reproduction into a general task-graph scheduling laboratory.  A
*scenario* is a JSON/TOML document naming graphs, machine model,
algorithms, metrics and an optional sweep; it compiles down to the
parallel, persisted grid engine of :mod:`repro.bench`, so every sweep
is parallel (``jobs``), cached (``store``) and resumable (``resume``).

>>> from repro.scenarios import get_scenario, compile_scenario, run_scenario
>>> compiled = compile_scenario(get_scenario("hetero-speeds"))
>>> result = run_scenario(compiled, jobs=4)

See :mod:`repro.scenarios.spec` for the document schema,
:mod:`repro.scenarios.registry` for the ready-made scenarios, and the
CLI verbs ``python -m repro.bench scenario {list,validate,run}``.
"""

from .compile import (
    AdvScenarioResult,
    CompiledScenario,
    ScenarioResult,
    SimScenarioResult,
    Variant,
    adv_tables,
    compile_scenario,
    online_counterpart,
    online_tables,
    run_adv_scenario,
    run_scenario,
    run_sim_scenario,
    scenario_tables,
    sim_tables,
)
from .registry import SCENARIOS, get_scenario, scenario_names
from .spec import (
    GENERATORS,
    METRICS,
    TOPOLOGY_KINDS,
    ScenarioSpec,
    SpecError,
    load_spec,
    validate_spec,
)

__all__ = [
    "METRICS",
    "GENERATORS",
    "TOPOLOGY_KINDS",
    "ScenarioSpec",
    "SpecError",
    "load_spec",
    "validate_spec",
    "SCENARIOS",
    "scenario_names",
    "get_scenario",
    "Variant",
    "CompiledScenario",
    "ScenarioResult",
    "SimScenarioResult",
    "AdvScenarioResult",
    "compile_scenario",
    "run_scenario",
    "run_sim_scenario",
    "run_adv_scenario",
    "scenario_tables",
    "sim_tables",
    "adv_tables",
    "online_counterpart",
    "online_tables",
]

"""repro — reproduction of Kwok & Ahmad (IPPS 1998).

*Benchmarking the Task Graph Scheduling Algorithms*: 15 static DAG
scheduling heuristics (BNP, UNC and APN classes), the five benchmark
graph suites, a branch-and-bound optimal solver, and a harness that
regenerates every table and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import TaskGraph, Machine, get_scheduler
>>> g = TaskGraph([2, 3, 3, 4], {(0, 1): 4, (0, 2): 1, (1, 3): 1, (2, 3): 1})
>>> sched = get_scheduler("MCP").schedule(g, Machine(2))
>>> sched.length > 0
True
"""

from .core import (
    Machine,
    Message,
    NetworkMachine,
    Placement,
    Schedule,
    TaskGraph,
    alap,
    blevel,
    cp_computation_cost,
    cp_length,
    critical_path,
    static_blevel,
    tlevel,
    validate,
)
from .core.exceptions import (
    CycleError,
    GeneratorError,
    GraphError,
    MachineError,
    ReproError,
    RoutingError,
    ScheduleError,
    SolverBudgetExceeded,
)
from .network import LinkSchedule, Topology

__version__ = "1.0.0"

__all__ = [
    "TaskGraph",
    "Machine",
    "NetworkMachine",
    "Schedule",
    "Placement",
    "Message",
    "Topology",
    "LinkSchedule",
    "validate",
    "tlevel",
    "blevel",
    "static_blevel",
    "alap",
    "critical_path",
    "cp_length",
    "cp_computation_cost",
    "get_scheduler",
    "list_schedulers",
    "ReproError",
    "GraphError",
    "CycleError",
    "ScheduleError",
    "MachineError",
    "RoutingError",
    "GeneratorError",
    "SolverBudgetExceeded",
    "__version__",
]


def get_scheduler(name: str):
    """Look up a scheduler instance by its paper acronym (e.g. ``"DCP"``),
    by a ``param:`` component spec string (e.g.
    ``"param:prio=blevel,proc=etf"``) that synthesizes a list scheduler
    from pluggable components (see :mod:`repro.algorithms.components`),
    or by an ``online:`` spec (e.g. ``"online:mcp,imode=mean"``) that
    executes the components event-driven under an information mode —
    see :mod:`repro.sim.online`.

    Defers the algorithm-package import so ``import repro`` stays cheap.
    """
    from .algorithms import get_scheduler as _get

    return _get(name)


def list_schedulers(klass: str | None = None):
    """Names of available schedulers, optionally filtered by class
    (``"BNP"``, ``"UNC"`` or ``"APN"``)."""
    from .algorithms import list_schedulers as _list

    return _list(klass)

"""The stable one-call facade: ``repro.api``.

Internal modules refactor freely between PRs; this module is the
surface that does not move.  Everything a caller typically wants is a
single call away::

    from repro import api

    schedule = api.schedule(graph, machine=3, spec="mcp")
    report   = api.simulate(graph, machine=3, spec="mcp", noise="lognormal:0.3")
    table    = api.rank([graph], machine=3, specs=["mcp", "dls", "param:hlfet"])

Inputs are deliberately forgiving:

* *graphs* — a :class:`~repro.core.graph.TaskGraph`, STG-format text
  (see :mod:`repro.io.stg`), or a JSON-style mapping
  ``{"weights": [...], "edges": [[u, v, cost], ...], "name": "..."}``;
* *machines* — a :class:`~repro.core.machine.Machine`, a processor
  count, a mapping ``{"procs": n, "speeds": [...]}`` or ``None`` (one
  processor per task, the UNC convention);
* *specs* — anything :func:`repro.get_scheduler` accepts: paper
  acronyms (``"MCP"``), ``param:`` component specs, ``online:`` specs.

The scheduling service (:mod:`repro.service`), the quickstart example
and the README snippets all go through this facade, and the
fingerprint helpers below define the service's schedule-cache identity:
:func:`request_key` is the exact ``(graph, machine, spec)`` triple
identity — equal keys guarantee bit-identical schedules.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from .core.exceptions import GraphError, MachineError
from .core.graph import TaskGraph
from .core.machine import Machine, NetworkMachine
from .core.schedule import Schedule, validate as validate_schedule

__all__ = [
    "GraphLike",
    "MachineLike",
    "as_graph",
    "as_machine",
    "graph_fingerprint",
    "machine_fingerprint",
    "spec_fingerprint",
    "request_key",
    "schedule",
    "simulate",
    "rank",
]

GraphLike = Union[TaskGraph, str, Mapping[str, Any]]
MachineLike = Union[Machine, int, Mapping[str, Any], None]


# ----------------------------------------------------------------------
# input adapters
# ----------------------------------------------------------------------
def as_graph(source: GraphLike, name: Optional[str] = None) -> TaskGraph:
    """Coerce ``source`` to a :class:`TaskGraph`.

    Accepts a ready ``TaskGraph`` (returned as-is), STG-format text, or
    a mapping with ``weights`` (list of computation costs) and
    ``edges`` (list of ``[u, v, cost]`` triples, or a mapping).
    Raises :class:`~repro.core.exceptions.GraphError` on anything
    malformed — never a bare ``KeyError``/``TypeError``.
    """
    if isinstance(source, TaskGraph):
        return source
    if isinstance(source, str):
        from .io.stg import loads_stg

        return loads_stg(source, name=name or "stg")
    if isinstance(source, Mapping):
        if "weights" not in source:
            raise GraphError("graph mapping needs a 'weights' list")
        raw_edges = source.get("edges", [])
        if isinstance(raw_edges, Mapping):
            edges = dict(raw_edges)
        else:
            try:
                edges = {(int(u), int(v)): float(c)
                         for u, v, c in raw_edges}
            except (TypeError, ValueError) as exc:
                raise GraphError(
                    f"graph 'edges' must be [u, v, cost] triples ({exc})"
                ) from None
        try:
            weights = [float(w) for w in source["weights"]]
        except (TypeError, ValueError) as exc:
            raise GraphError(
                f"graph 'weights' must be numbers ({exc})") from None
        return TaskGraph(weights, edges,
                         name=name or str(source.get("name", "request")))
    raise GraphError(
        f"cannot build a task graph from {type(source).__name__}")


def as_machine(source: MachineLike, graph: TaskGraph) -> Machine:
    """Coerce ``source`` to a :class:`Machine` for ``graph``.

    ``None`` means one processor per task (always sufficient); an int
    is a bounded homogeneous clique; a mapping carries ``procs`` plus
    optional per-processor ``speeds``.
    """
    if source is None:
        return Machine.unbounded(graph)
    if isinstance(source, Machine):
        return source
    if isinstance(source, int):
        return Machine(source)
    if isinstance(source, Mapping):
        try:
            procs = source.get("procs")
            speeds = source.get("speeds")
            if procs is None and speeds is None:
                return Machine.unbounded(graph)
            if procs is None:
                procs = len(speeds)  # type: ignore[arg-type]
            return Machine(int(procs), speeds=speeds)
        except (TypeError, ValueError) as exc:
            raise MachineError(f"bad machine mapping ({exc})") from None
    raise MachineError(
        f"cannot build a machine from {type(source).__name__}")


# ----------------------------------------------------------------------
# fingerprints — the schedule-cache identity
# ----------------------------------------------------------------------
def graph_fingerprint(graph: GraphLike) -> str:
    """Content digest of the graph (name excluded); see
    :meth:`TaskGraph.fingerprint`."""
    return as_graph(graph).fingerprint()


def machine_fingerprint(machine: Machine) -> str:
    """Stable identity of a machine model.

    Cliques are identified by processor count and speed profile;
    network machines additionally hash their exact link set (mirroring
    :meth:`repro.bench.runner.BenchConfig.fingerprint`).
    """
    fp = f"clique:{machine.num_procs}"
    if machine.speeds is not None:
        fp += ";speeds=" + ",".join(f"{s:g}" for s in machine.speeds)
    if isinstance(machine, NetworkMachine):
        import hashlib

        topo = machine.topology
        links = hashlib.sha256(repr(topo.links).encode()).hexdigest()[:12]
        fp = (f"net:{topo.name}:{topo.num_procs}p:{links}"
              f";bw={topo.bandwidth:g}")
    return fp


def spec_fingerprint(spec: str) -> str:
    """Canonical identity of a scheduler spec.

    Two spellings of the same spec (axis order, case, defaults spelled
    out or not) share one fingerprint; an unknown spec raises the
    resolver's ``KeyError``/``ValueError``.
    """
    from .algorithms import get_scheduler

    return get_scheduler(spec).name


def request_key(graph: GraphLike, machine: MachineLike = None,
                spec: str = "mcp") -> str:
    """The full ``(graph, machine, spec)`` cache key.

    Equal keys guarantee bit-identical schedules from the deterministic
    schedulers — the invariant the service's schedule cache rests on
    (property-tested in ``tests/test_api.py``).
    """
    g = as_graph(graph)
    m = as_machine(machine, g)
    return (f"{graph_fingerprint(g)}|{machine_fingerprint(m)}"
            f"|{spec_fingerprint(spec)}")


# ----------------------------------------------------------------------
# one-call entry points
# ----------------------------------------------------------------------
def schedule(graph: GraphLike, machine: MachineLike = None,
             spec: str = "mcp", *, validate: bool = True) -> Schedule:
    """Schedule ``graph`` on ``machine`` with ``spec``; validated.

    The one-call form of parse → resolve → schedule → validate.  With
    ``validate=True`` (default) the returned schedule has passed every
    model invariant (precedence, communication, no-overlap).
    """
    from .algorithms import get_scheduler

    g = as_graph(graph)
    m = as_machine(machine, g)
    sched = get_scheduler(spec).schedule(g, m)
    if validate:
        network = m.topology if isinstance(m, NetworkMachine) else None
        validate_schedule(sched, network=network)
    return sched


def simulate(graph: GraphLike, machine: MachineLike = None,
             spec: str = "mcp", *, noise: str = "lognormal:0.3",
             trials: int = 100, seed: int = 0):
    """Monte-Carlo execute ``spec``'s schedule under duration noise.

    ``noise`` is the CLI's ``DIST:PARAM`` grammar (``"lognormal:0.3"``,
    ``"uniform:0.2"``, ``"none:0"`` for exact replay).  Returns the
    aggregated :class:`~repro.sim.robustness.RobustnessRow`.
    """
    from .sim import PerturbationModel, monte_carlo, perturbation_from_dict

    kind, _, param = noise.partition(":")
    if kind in ("none", "exact", ""):
        perturb = PerturbationModel()
    else:
        try:
            perturb = perturbation_from_dict(
                {"duration": {"dist": kind, "param": float(param or 0)}})
        except (KeyError, ValueError) as exc:
            raise ValueError(f"bad noise spec {noise!r}: {exc}") from None
    sched = schedule(graph, machine, spec)
    from .algorithms import get_scheduler

    resolved = get_scheduler(spec)
    row, _samples = monte_carlo(sched, perturb=perturb, trials=trials,
                                seed=seed, algorithm=resolved.name,
                                klass=resolved.klass)
    return row


def rank(graphs: Union[GraphLike, Iterable[GraphLike]],
         machine: MachineLike = None,
         specs: Sequence[str] = ("HLFET", "ISH", "MCP", "ETF", "DLS",
                                 "LAST")) -> List[Dict[str, Any]]:
    """Rank ``specs`` over ``graphs`` by average NSL rank.

    Returns one dict per spec — ``{"spec", "avg_rank", "mean_nsl",
    "wins"}`` — sorted best-first, mirroring the paper's ranking
    methodology (:func:`repro.metrics.ranking.average_ranks`).
    A single graph may be passed bare.
    """
    from .metrics.measures import RunResult, nsl
    from .metrics.ranking import average_ranks

    if isinstance(graphs, (TaskGraph, str, Mapping)):
        graphs = [graphs]
    rows: List[RunResult] = []
    mean_nsl: Dict[str, List[float]] = {}
    for i, source in enumerate(graphs):
        g = as_graph(source)
        for spec in specs:
            sched = schedule(g, machine, spec)
            canonical = spec_fingerprint(spec)
            rows.append(RunResult(
                algorithm=canonical, klass="", graph=g.name or f"g{i}",
                num_nodes=g.num_nodes, length=sched.length,
                nsl=nsl(sched), procs_used=sched.processors_used(),
                runtime_s=0.0))
            mean_nsl.setdefault(canonical, []).append(nsl(sched))
    ranks = dict(average_ranks(rows))
    wins: Dict[str, int] = {name: 0 for name in ranks}
    by_graph: Dict[str, List] = {}
    for r in rows:
        by_graph.setdefault(r.graph, []).append(r)
    for cell_rows in by_graph.values():
        best = min(r.length for r in cell_rows)
        for r in cell_rows:
            if r.length <= best:
                wins[r.algorithm] += 1
    out = [{"spec": name, "avg_rank": ranks[name],
            "mean_nsl": sum(mean_nsl[name]) / len(mean_nsl[name]),
            "wins": wins[name]}
           for name in sorted(ranks, key=lambda n: (ranks[n], n))]
    return out

"""Admissible lower bounds on schedule length.

Used both to seed/prune the branch-and-bound solver and as reporting
floors in the benchmark tables when an optimum could not be proven
within budget (mirroring the paper's remark that generating optimal
solutions for arbitrary graphs takes exponential time).

All bounds here assume the clique (contention-free) machine model, in
which communication can always be avoided by co-location — so only
computation-based quantities are admissible.
"""

from __future__ import annotations

from ..core.attributes import static_blevel
from ..core.graph import TaskGraph

__all__ = [
    "lb_critical_path",
    "lb_workload",
    "lb_combined",
]


def lb_critical_path(graph: TaskGraph) -> float:
    """Computation-only critical path: a chain can never run in parallel."""
    return max(static_blevel(graph))


def lb_workload(graph: TaskGraph, num_procs: int) -> float:
    """Total work divided by processor count."""
    return graph.total_computation / num_procs


def lb_combined(graph: TaskGraph, num_procs: int) -> float:
    """Best of the admissible bounds."""
    return max(lb_critical_path(graph), lb_workload(graph, num_procs))

"""Branch-and-bound optimal DAG scheduler (the RGBOS calibrator).

The paper obtained optimal solutions for its RGBOS suite with a parallel
A* [23]; this is the serial equivalent: a depth-first branch-and-bound
over *placement sequences* with the same admissible bound structure.

Search space
------------
A state is a partial schedule.  Expansion places one ready node onto one
processor at its earliest start there (append-only).  This is complete:
for any feasible schedule, placing its tasks in start-time order at
greedy ESTs reproduces an assignment/per-processor-order with
componentwise earlier starts, so some leaf of the tree is at least as
good as any feasible schedule.

Prunings (all optimality-preserving)
------------------------------------
* **f-bound** — at every state a lower bound is computed from (a) the
  partial makespan, (b) remaining workload over the processors, and
  (c) per-node earliest-start floors: ready nodes take the *minimum over
  processors* of their true earliest start there (arrival times of
  scheduled parents are fixed; processor ready times only grow, so the
  minimum is admissible), deeper nodes take computation-only
  propagation; each floor is extended by the node's computation-only
  b-level.
* **Processor symmetry** — empty processors are interchangeable: only
  the lowest-indexed empty processor is branched on.
* **Sibling order** — two consecutive placements that commute (different
  processors, no dependency between the two nodes) are explored in one
  canonical order only.
* **Transposition table** — states reached by different placement orders
  but with identical (processor, start) content are expanded once.
* **UB seeding** — the incumbent starts at the best result of the fast
  heuristics (MCP, DCP, DLS, ETF), so the DFS opens with a tight bound.

A node-expansion ``budget`` caps runtime; when exceeded the best
incumbent is returned with ``proved=False`` (the paper's own RGBOS
generation notes the same exponential wall).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..core.attributes import static_blevel
from ..core.graph import TaskGraph
from ..core.machine import Machine
from ..core.schedule import Schedule
from .bounds import lb_combined

__all__ = ["OptimalResult", "BranchAndBoundScheduler", "solve_optimal"]


@dataclass
class OptimalResult:
    """Outcome of an optimal search."""

    schedule: Schedule
    length: float
    proved: bool
    expanded: int
    lower_bound: float
    elapsed_s: float

    @property
    def gap(self) -> float:
        """Relative gap between incumbent and proven lower bound."""
        if self.length <= 0:
            return 0.0
        return (self.length - self.lower_bound) / self.length


class BranchAndBoundScheduler:
    """Depth-first B&B over ready-node placements.

    Parameters
    ----------
    budget:
        Maximum number of state expansions before giving up the proof.
    seed_heuristics:
        Scheduler names used to initialise the upper bound.
    """

    def __init__(self, budget: int = 200_000,
                 seed_heuristics: Tuple[str, ...] = ("MCP", "DCP", "DLS",
                                                     "ETF")):
        self.budget = int(budget)
        self.seed_heuristics = seed_heuristics

    # ------------------------------------------------------------------
    def solve(self, graph: TaskGraph, num_procs: int) -> OptimalResult:
        t0 = time.perf_counter()
        n = graph.num_nodes
        sl = static_blevel(graph)
        lb = lb_combined(graph, num_procs)
        topo = graph.topological_order
        preds = [graph.predecessors(i) for i in range(n)]
        succs = [graph.successors(i) for i in range(n)]
        weight = [graph.weight(i) for i in range(n)]

        best_sched, best_len = self._seed(graph, num_procs)
        if best_len <= lb + 1e-9:
            return OptimalResult(best_sched, best_len, True, 0, lb,
                                 time.perf_counter() - t0)

        proc_of = [-1] * n
        start = [0.0] * n
        finish = [0.0] * n
        proc_ready = [0.0] * num_procs
        unscheduled_parents = [graph.in_degree(i) for i in range(n)]
        ready: Set[int] = set(graph.entry_nodes)
        self._expanded = 0
        self._proved = True
        self._best_len = best_len
        self._best_assign: Optional[List[Tuple[int, int, float]]] = None
        seen: Set[Tuple] = set()

        def est(node: int, proc: int) -> float:
            t = proc_ready[proc]
            for p in preds[node]:
                arr = finish[p]
                if proc_of[p] != proc:
                    arr += graph.comm_cost(p, node)
                if arr > t:
                    t = arr
            return t

        def strong_lb(makespan: float, work_left: float,
                      proc_limit: int) -> float:
            busy = sum(proc_ready)
            f = max(makespan, (busy + work_left) / num_procs)
            t_lb = [0.0] * n
            for u in topo:
                if proc_of[u] >= 0:
                    t_lb[u] = start[u]
                    continue
                if u in ready:
                    t_lb[u] = min(est(u, p) for p in range(proc_limit))
                else:
                    t = 0.0
                    for p in preds[u]:
                        cand = t_lb[p] + weight[p]
                        if cand > t:
                            t = cand
                    t_lb[u] = t
                cand = t_lb[u] + sl[u]
                if cand > f:
                    f = cand
            return f

        def state_key() -> Tuple:
            groups: Dict[int, List[Tuple[float, int]]] = {}
            for i in range(n):
                if proc_of[i] >= 0:
                    groups.setdefault(proc_of[i], []).append((start[i], i))
            return tuple(sorted(tuple(sorted(g)) for g in groups.values()))

        def dfs(depth: int, makespan: float, work_left: float,
                prev_start: float, prev_proc: int, prev_node: int) -> None:
            if self._expanded >= self.budget:
                self._proved = False
                return
            if depth == n:
                if makespan < self._best_len - 1e-9:
                    self._best_len = makespan
                    self._best_assign = [
                        (i, proc_of[i], start[i]) for i in range(n)
                    ]
                return
            used = sum(1 for p in range(num_procs) if proc_ready[p] > 0)
            proc_limit = min(num_procs, used + 1)
            if strong_lb(makespan, work_left, proc_limit) >= self._best_len - 1e-9:
                return
            key = state_key()
            if key in seen:
                return
            seen.add(key)
            self._expanded += 1

            candidates: List[Tuple[float, float, int, int]] = []
            for node in ready:
                for proc in range(proc_limit):
                    s = est(node, proc)
                    if s + sl[node] >= self._best_len - 1e-9:
                        continue
                    if prev_node >= 0 and proc != prev_proc:
                        if (s, proc, node) < (prev_start, prev_proc,
                                              prev_node) and not graph.has_edge(
                                                  prev_node, node):
                            continue
                    candidates.append((s + sl[node], s, node, proc))
            candidates.sort()
            for _, s, node, proc in candidates:
                f_node = s + weight[node]
                new_mk = max(makespan, f_node)
                if new_mk >= self._best_len - 1e-9:
                    continue
                # --- apply ----------------------------------------------
                proc_of[node] = proc
                start[node] = s
                finish[node] = f_node
                saved_ready_time = proc_ready[proc]
                proc_ready[proc] = f_node
                ready.discard(node)
                released = []
                for child in succs[node]:
                    unscheduled_parents[child] -= 1
                    if unscheduled_parents[child] == 0:
                        released.append(child)
                        ready.add(child)
                dfs(depth + 1, new_mk, work_left - weight[node],
                    s, proc, node)
                # --- undo -----------------------------------------------
                for child in released:
                    ready.discard(child)
                for child in succs[node]:
                    unscheduled_parents[child] += 1
                ready.add(node)
                proc_ready[proc] = saved_ready_time
                proc_of[node] = -1
                if self._expanded >= self.budget:
                    self._proved = False
                    return

        dfs(0, 0.0, graph.total_computation, -1.0, -1, -1)

        if self._best_assign is not None:
            sched = Schedule(graph, num_procs)
            for node, proc, s in sorted(self._best_assign,
                                        key=lambda t: t[2]):
                sched.place(node, proc, s)
            best_sched, best_len = sched, sched.length
        proved = self._proved or best_len <= lb + 1e-9
        return OptimalResult(best_sched, best_len, proved, self._expanded,
                             best_len if proved else max(lb, 0.0),
                             time.perf_counter() - t0)

    # ------------------------------------------------------------------
    def _seed(self, graph: TaskGraph, num_procs: int) -> Tuple[Schedule, float]:
        """Best heuristic schedule as the initial incumbent."""
        from ..algorithms import get_scheduler

        machine = Machine(num_procs)
        best: Optional[Schedule] = None
        for name in self.seed_heuristics:
            try:
                sched = get_scheduler(name).schedule(graph, machine)
            except Exception:  # pragma: no cover - heuristics are total
                continue
            if best is None or sched.length < best.length:
                best = sched
        assert best is not None
        return best, best.length


def solve_optimal(graph: TaskGraph, num_procs: Optional[int] = None,
                  budget: int = 200_000) -> OptimalResult:
    """Convenience wrapper: pick a processor count and run the B&B.

    When ``num_procs`` is omitted we use ``min(8, width(graph))`` — no
    schedule can keep more processors busy than the graph's width, and
    eight matches the machine scale of the paper's experiments.
    """
    if num_procs is None:
        num_procs = max(1, min(8, graph.width()))
    return BranchAndBoundScheduler(budget=budget).solve(graph, num_procs)

"""Optimal scheduling: admissible bounds and branch-and-bound search."""

from .bnb import BranchAndBoundScheduler, OptimalResult, solve_optimal
from .bounds import lb_combined, lb_critical_path, lb_workload

__all__ = [
    "BranchAndBoundScheduler",
    "OptimalResult",
    "solve_optimal",
    "lb_critical_path",
    "lb_workload",
    "lb_combined",
]

"""Processor network topologies for the APN algorithm class.

The paper's APN algorithms assume "an arbitrary network topology, of
which the links are not contention-free".  A :class:`Topology` is an
undirected connected graph over processors; each undirected link carries
two independent directed *channels* (full-duplex), the standard
assumption in the MH and BSA papers.

Constructors cover the families the original studies used (ring, chain,
2-D mesh, hypercube, star, clique) plus seeded random connected graphs
for robustness sweeps.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from ..core.exceptions import MachineError, RoutingError
from ..core.rng import as_generator

__all__ = ["Topology"]


class Topology:
    """An undirected, connected processor interconnect.

    Parameters
    ----------
    num_procs:
        Number of processors (nodes of the interconnect).
    links:
        Iterable of undirected links ``(a, b)``.
    name:
        Identifier used in reports.
    bandwidth:
        Relative link bandwidth shared by every link: one hop of a
        message of cost ``c`` occupies its channel for ``c / bandwidth``
        time units.  ``1.0`` (default) is the paper's model; the
        scenario engine sweeps it for bandwidth studies.
    """

    def __init__(self, num_procs: int, links: Iterable[Tuple[int, int]],
                 name: str = "topology", bandwidth: float = 1.0):
        if num_procs < 1:
            raise MachineError("topology needs at least one processor")
        if not bandwidth > 0:
            raise MachineError("link bandwidth must be positive")
        self.num_procs = int(num_procs)
        self.name = name
        self.bandwidth = float(bandwidth)
        adj: List[set] = [set() for _ in range(self.num_procs)]
        link_set = set()
        for a, b in links:
            a, b = int(a), int(b)
            if not (0 <= a < num_procs and 0 <= b < num_procs):
                raise MachineError(f"link ({a}, {b}) references unknown processor")
            if a == b:
                raise MachineError(f"self link on processor {a}")
            lo, hi = min(a, b), max(a, b)
            link_set.add((lo, hi))
            adj[a].add(b)
            adj[b].add(a)
        self._adj = [sorted(s) for s in adj]
        self.links: Tuple[Tuple[int, int], ...] = tuple(sorted(link_set))
        if self.num_procs > 1:
            self._check_connected()
        self._routes: Dict[Tuple[int, int], Tuple[int, ...]] = {}

    def _check_connected(self) -> None:
        seen = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        if len(seen) != self.num_procs:
            raise MachineError(f"topology {self.name!r} is not connected")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def neighbors(self, proc: int) -> List[int]:
        return list(self._adj[proc])

    def degree(self, proc: int) -> int:
        return len(self._adj[proc])

    def has_link(self, a: int, b: int) -> bool:
        """True when an undirected link joins ``a`` and ``b``."""
        return b in self._adj[a]

    @property
    def num_links(self) -> int:
        return len(self.links)

    def channels(self) -> List[Tuple[int, int]]:
        """All directed channels (two per undirected link)."""
        out = []
        for a, b in self.links:
            out.append((a, b))
            out.append((b, a))
        return out

    def transfer_time(self, cost: float) -> float:
        """Time one hop of a message of ``cost`` occupies its channel."""
        return cost / self.bandwidth

    def with_bandwidth(self, bandwidth: float) -> "Topology":
        """A copy of this topology whose links run at ``bandwidth``."""
        return Topology(self.num_procs, self.links, name=self.name,
                        bandwidth=bandwidth)

    # ------------------------------------------------------------------
    # routing (deterministic shortest paths)
    # ------------------------------------------------------------------
    def route(self, src: int, dst: int) -> Tuple[int, ...]:
        """Shortest processor path ``src -> dst`` (inclusive).

        BFS with lowest-index tie-breaking, memoised.  Static routing:
        every message between the same pair follows the same path, as in
        the MH routing-table model.
        """
        key = (src, dst)
        cached = self._routes.get(key)
        if cached is not None:
            return cached
        if src == dst:
            path: Tuple[int, ...] = (src,)
        else:
            parent = {src: src}
            frontier = [src]
            while frontier and dst not in parent:
                nxt: List[int] = []
                for u in frontier:
                    for v in self._adj[u]:
                        if v not in parent:
                            parent[v] = u
                            nxt.append(v)
                frontier = nxt
            if dst not in parent:
                raise RoutingError(f"no route {src} -> {dst} in {self.name!r}")
            rev = [dst]
            while rev[-1] != src:
                rev.append(parent[rev[-1]])
            path = tuple(reversed(rev))
        self._routes[key] = path
        return path

    def hop_count(self, src: int, dst: int) -> int:
        return len(self.route(src, dst)) - 1

    @property
    def diameter(self) -> int:
        return max(
            self.hop_count(a, b)
            for a in range(self.num_procs)
            for b in range(self.num_procs)
        )

    # ------------------------------------------------------------------
    # standard families
    # ------------------------------------------------------------------
    @classmethod
    def clique(cls, num_procs: int) -> "Topology":
        links = [
            (a, b)
            for a in range(num_procs)
            for b in range(a + 1, num_procs)
        ]
        return cls(num_procs, links, name=f"clique-{num_procs}")

    @classmethod
    def ring(cls, num_procs: int) -> "Topology":
        if num_procs == 1:
            return cls(1, [], name="ring-1")
        if num_procs == 2:
            return cls(2, [(0, 1)], name="ring-2")
        links = [(i, (i + 1) % num_procs) for i in range(num_procs)]
        return cls(num_procs, links, name=f"ring-{num_procs}")

    @classmethod
    def chain(cls, num_procs: int) -> "Topology":
        links = [(i, i + 1) for i in range(num_procs - 1)]
        return cls(num_procs, links, name=f"chain-{num_procs}")

    @classmethod
    def star(cls, num_procs: int) -> "Topology":
        links = [(0, i) for i in range(1, num_procs)]
        return cls(num_procs, links, name=f"star-{num_procs}")

    @classmethod
    def mesh2d(cls, rows: int, cols: int) -> "Topology":
        """Rectangular 2-D mesh, row-major processor numbering."""
        if rows < 1 or cols < 1:
            raise MachineError("mesh needs positive dimensions")
        links = []
        for r in range(rows):
            for c in range(cols):
                i = r * cols + c
                if c + 1 < cols:
                    links.append((i, i + 1))
                if r + 1 < rows:
                    links.append((i, i + cols))
        return cls(rows * cols, links, name=f"mesh-{rows}x{cols}")

    @classmethod
    def hypercube(cls, dim: int) -> "Topology":
        """Binary hypercube of ``2**dim`` processors."""
        if dim < 0:
            raise MachineError("hypercube dimension must be >= 0")
        n = 1 << dim
        links = [
            (i, i ^ (1 << d))
            for i in range(n)
            for d in range(dim)
            if i < (i ^ (1 << d))
        ]
        return cls(n, links, name=f"hypercube-{dim}")

    @classmethod
    def random_connected(cls, num_procs: int, extra_links: int = 0,
                         seed: int = 0) -> "Topology":
        """Random spanning tree plus ``extra_links`` distinct chords."""
        rng = as_generator(seed)
        order = rng.permutation(num_procs)
        links = set()
        for i in range(1, num_procs):
            j = int(rng.integers(0, i))
            a, b = int(order[i]), int(order[j])
            links.add((min(a, b), max(a, b)))
        candidates = [
            (a, b)
            for a in range(num_procs)
            for b in range(a + 1, num_procs)
            if (a, b) not in links
        ]
        rng.shuffle(candidates)
        for a, b in candidates[:extra_links]:
            links.add((a, b))
        return cls(num_procs, links, name=f"random-{num_procs}-s{seed}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bw = "" if self.bandwidth == 1.0 else f", bw={self.bandwidth:g}"
        return (f"Topology({self.name!r}, p={self.num_procs}, "
                f"links={self.num_links}{bw})")

"""Link contention: scheduling messages on network channels.

The APN model (Section 4 of the paper) requires algorithms to "also
schedule messages on the network communication links".  We implement the
store-and-forward model used by MH and BSA:

* a message for edge ``(u, v)`` with communication cost ``c`` occupies
  each directed channel along its route for ``c / bandwidth`` time
  units (the topology's shared link bandwidth, 1.0 in the paper's
  model), one hop after another;
* a directed channel carries one message at a time;
* hop reservations may be inserted into idle windows of a channel
  (insertion discipline, mirroring task insertion on processors).

:class:`LinkSchedule` owns the channel timelines and supports tentative
queries (``probe_arrival``) so schedulers can compare candidate
processors before committing.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Tuple

from ..core.exceptions import ScheduleError
from ..core.schedule import Message
from .topology import Topology

__all__ = ["LinkSchedule"]

_EPS = 1e-9

Channel = Tuple[int, int]
Hop = Tuple[Channel, float, float]


class _ChannelTimeline:
    """Busy intervals of one directed channel, kept sorted."""

    __slots__ = ("starts", "finishes")

    def __init__(self):
        self.starts: List[float] = []
        self.finishes: List[float] = []

    def earliest(self, est: float, duration: float) -> float:
        """Earliest start >= est of a busy window of ``duration``."""
        starts, fins = self.starts, self.finishes
        if not starts:
            return est
        if est + duration <= starts[0] + _EPS:
            return est
        i = bisect.bisect_right(fins, est)
        if i > 0:
            i -= 1
        for k in range(i, len(starts) - 1):
            gap = max(est, fins[k])
            if gap + duration <= starts[k + 1] + _EPS:
                return gap
        return max(est, fins[-1])

    def reserve(self, start: float, duration: float) -> None:
        finish = start + duration
        i = bisect.bisect_left(self.starts, start)
        if i > 0 and self.finishes[i - 1] > start + _EPS:
            raise ScheduleError("channel reservation overlaps existing message")
        if i < len(self.starts) and self.starts[i] < finish - _EPS:
            raise ScheduleError("channel reservation overlaps existing message")
        self.starts.insert(i, start)
        self.finishes.insert(i, finish)

    def release(self, start: float) -> None:
        i = bisect.bisect_left(self.starts, start)
        if i == len(self.starts) or abs(self.starts[i] - start) > _EPS:
            raise ScheduleError("no reservation at the given start time")
        del self.starts[i]
        del self.finishes[i]


class LinkSchedule:
    """Message reservations over every directed channel of a topology."""

    def __init__(self, topology: Topology):
        self.topology = topology
        self._timelines: Dict[Channel, _ChannelTimeline] = {
            ch: _ChannelTimeline() for ch in topology.channels()
        }

    # ------------------------------------------------------------------
    def _plan_hops(self, route: Tuple[int, ...], ready: float,
                   cost: float) -> Tuple[List[Hop], float]:
        """Plan per-hop reservations without committing them."""
        hops: List[Hop] = []
        avail = ready
        duration = self.topology.transfer_time(cost)
        for a, b in zip(route, route[1:]):
            tl = self._timelines[(a, b)]
            start = tl.earliest(avail, duration)
            hops.append(((a, b), start, start + duration))
            avail = start + duration
        return hops, avail

    def probe_arrival(self, src: int, dst: int, ready: float,
                      cost: float) -> float:
        """Arrival time if a message left ``src`` at ``ready`` — no commit.

        Zero-cost or same-processor messages arrive instantly.
        """
        if src == dst or cost <= 0:
            return ready
        route = self.topology.route(src, dst)
        _, arrival = self._plan_hops(route, ready, cost)
        return arrival

    def commit(self, edge_src_node: int, edge_dst_node: int, src: int,
               dst: int, ready: float, cost: float) -> Message:
        """Reserve channels for the message of edge ``(u, v)``.

        Returns the :class:`~repro.core.schedule.Message` record to attach
        to the task schedule.  Same-processor or zero-cost messages yield
        a hop-less record arriving at ``ready``.
        """
        if src == dst or cost <= 0:
            return Message(edge_src_node, edge_dst_node, (src,) if src == dst
                           else self.topology.route(src, dst), [], ready)
        route = self.topology.route(src, dst)
        hops, arrival = self._plan_hops(route, ready, cost)
        duration = self.topology.transfer_time(cost)
        for (ch, start, _finish) in hops:
            self._timelines[ch].reserve(start, duration)
        return Message(edge_src_node, edge_dst_node, route, hops, arrival)

    def release(self, msg: Message) -> None:
        """Undo a committed message (used by migrating schedulers)."""
        for (ch, start, finish) in msg.hops:
            self._timelines[ch].release(start)

    def busy_time(self) -> float:
        """Total reserved channel time (a network-load metric)."""
        total = 0.0
        for tl in self._timelines.values():
            total += sum(f - s for s, f in zip(tl.starts, tl.finishes))
        return total

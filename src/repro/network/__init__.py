"""Processor-network substrate for the APN algorithm class."""

from .contention import LinkSchedule
from .topology import Topology

__all__ = ["Topology", "LinkSchedule"]

"""Command line for the static-analysis pass.

Reached three ways — ``repro-bench check ...``, ``python -m repro.bench
check ...`` and ``python -m repro.check ...`` — all ending in
:func:`main`.  Exit codes follow the repo convention: 0 clean, 1 when
findings survive suppression, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .engine import available_rules, run_check
from .report import FORMATS, render

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench check",
        description="Static analysis of the repro source tree against the "
                    "RPR scheduler-invariant rules.",
    )
    parser.add_argument(
        "--src-root", metavar="DIR", default=None,
        help="directory containing the 'repro' package "
             "(default: the installed package's parent)")
    parser.add_argument(
        "--repo-root", metavar="DIR", default=None,
        help="repository root for docs/workflows/tests cross-references "
             "(default: parent of --src-root)")
    parser.add_argument(
        "--rules", metavar="CODES", default=None,
        help="comma-separated subset of rules to run, by code or name "
             "(e.g. RPR001,rng-discipline); default: all")
    parser.add_argument(
        "--format", dest="fmt", choices=FORMATS, default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the available rules and exit")
    return parser


def _list_rules() -> str:
    lines = []
    for cls in available_rules():
        lines.append(f"{cls.code}  {cls.name:<26} {cls.summary()}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors, 0 on --help; keep both.
        return int(exc.code or 0)

    if args.list_rules:
        print(_list_rules())  # repro: noqa-RPR006 check's own CLI front-end
        return 0

    rules = None
    if args.rules:
        rules = [tok for tok in args.rules.split(",") if tok.strip()]

    try:
        findings = run_check(src_root=args.src_root,
                             repo_root=args.repo_root, rules=rules)
    except (KeyError, FileNotFoundError) as exc:
        message = exc.args[0] if exc.args else exc
        print(  # repro: noqa-RPR006 CLI error diagnostic
            f"repro-bench check: error: {message}", file=sys.stderr)
        return 2

    if args.repo_root:
        base: Optional[str] = args.repo_root
    elif args.src_root:
        base = str(Path(args.src_root).resolve().parent)
    else:
        base = str(Path.cwd())
    print(  # repro: noqa-RPR006 check's own CLI front-end
        render(findings, args.fmt, base=base))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

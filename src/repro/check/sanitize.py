"""The opt-in runtime sanitizer: assertion hooks for harness invariants.

Armed by ``REPRO_SANITIZE=1`` in the environment (the ``--sanitize``
CLI flag sets it for the process), this module backs the hooks wired
into :mod:`repro.core.graph`, :mod:`repro.core.kernel`,
:mod:`repro.core.schedule` and :mod:`repro.sim.engine`:

* CSR adjacency round-trips against the list adjacency it was built
  from;
* :class:`~repro.core.kernel.ArrivalProfile` answers are cross-checked
  against the scalar ``data_ready_time`` oracle;
* every placement keeps a processor timeline sorted and its flat
  mirrors consistent;
* the simulator's event heap pops timestamps monotonically.

The hooks are deliberately cheap enough that the full golden
differential corpus runs under the sanitizer in CI; when disarmed they
cost one environment lookup per entry point.  A failed check raises
:class:`SanitizeError` — it means *harness memory was corrupted*, not
that an input was invalid, so it is never caught by the layers above.

This module must stay import-light (stdlib only): the core modules
consult it from their hot paths.
"""

from __future__ import annotations

import os
from typing import Any

__all__ = ["SanitizeError", "enabled", "require", "freeze_arrays"]

#: Environment variable that arms the sanitizer ("" / "0" = off).
ENV_VAR = "REPRO_SANITIZE"


class SanitizeError(RuntimeError):
    """A harness invariant was violated at runtime (memory corruption)."""


def enabled() -> bool:
    """True when the sanitizer is armed for this process.

    Read from the environment on every call so tests (and long-lived
    processes) can toggle it; the lookup is a single dict probe.
    """
    return os.environ.get(ENV_VAR, "") not in ("", "0")


def require(condition: bool, message: str) -> None:
    """Raise :class:`SanitizeError` unless ``condition`` holds."""
    if not condition:
        raise SanitizeError(f"sanitizer: {message}")


def freeze_arrays(*arrays: Any) -> None:
    """Mark numpy arrays read-only (no-op for anything else)."""
    for arr in arrays:
        setflags = getattr(arr, "setflags", None)
        if setflags is not None:
            setflags(write=False)

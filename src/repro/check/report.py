"""Rendering findings: text, JSON and GitHub-annotation formats.

The ``text`` format is the familiar ``path:line:col: CODE message``
linter shape, followed by a per-rule tally.  ``json`` emits a single
machine-readable document (for tooling and the self-tests).  ``github``
emits ``::error`` workflow commands so a blocking CI job annotates the
offending lines directly in the pull-request diff.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Dict, List, Optional, Sequence

from .engine import Finding

__all__ = ["FORMATS", "render"]

FORMATS = ("text", "json", "github")


def _relativize(path: str, base: Optional[str]) -> str:
    if base:
        try:
            return os.path.relpath(path, base)
        except ValueError:  # pragma: no cover - different drive on win32
            return path
    return path


def render_text(findings: Sequence[Finding],
                base: Optional[str] = None) -> str:
    """Classic linter output plus a per-rule tally."""
    if not findings:
        return "repro check: clean (0 findings)"
    lines = [
        f"{_relativize(f.path, base)}:{f.line}:{f.col}: {f.code} {f.message}"
        for f in findings
    ]
    tally = Counter(f.code for f in findings)
    counts = ", ".join(f"{code} x{n}" for code, n in sorted(tally.items()))
    lines.append("")
    lines.append(f"repro check: {len(findings)} finding"
                 f"{'s' if len(findings) != 1 else ''} ({counts})")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding],
                base: Optional[str] = None) -> str:
    """One JSON document: counts plus the full finding list."""
    payload: Dict[str, object] = {
        "clean": not findings,
        "count": len(findings),
        "by_rule": dict(sorted(Counter(f.code for f in findings).items())),
        "findings": [
            {
                "path": _relativize(f.path, base),
                "line": f.line,
                "col": f.col,
                "code": f.code,
                "message": f.message,
            }
            for f in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def _escape_property(value: str) -> str:
    """Escape a workflow-command property value per GitHub's rules."""
    return (value.replace("%", "%25").replace("\r", "%0D")
            .replace("\n", "%0A").replace(":", "%3A").replace(",", "%2C"))


def _escape_data(value: str) -> str:
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def render_github(findings: Sequence[Finding],
                  base: Optional[str] = None) -> str:
    """``::error`` workflow commands, one per finding."""
    lines: List[str] = []
    for f in findings:
        path = _relativize(f.path, base)
        lines.append(
            f"::error file={_escape_property(path)},line={f.line},"
            f"col={f.col},title={f.code}::{_escape_data(f.message)}")
    lines.append(f"repro check: {len(findings)} finding"
                 f"{'s' if len(findings) != 1 else ''}"
                 if findings else "repro check: clean (0 findings)")
    return "\n".join(lines)


_RENDERERS = {
    "text": render_text,
    "json": render_json,
    "github": render_github,
}


def render(findings: Sequence[Finding], fmt: str = "text",
           base: Optional[str] = None) -> str:
    """Render findings in one of :data:`FORMATS`.

    ``base`` relativizes paths (usually the repo root) so output is
    stable across checkouts.
    """
    try:
        renderer = _RENDERERS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown format {fmt!r} (expected one of {', '.join(FORMATS)})"
        ) from None
    return renderer(findings, base)

"""The RPR rule set: domain invariants as pluggable AST checks.

Every rule is a :class:`Rule` subclass with a stable code (``RPR001``
...), a one-line summary and a docstring explaining *why* the invariant
matters for the benchmark's trustworthiness.  Rules report
:class:`~repro.check.engine.Finding` objects; an inline
``# repro: noqa-RPR0xx <reason>`` comment on the reported line
suppresses a finding (see :mod:`repro.check.suppress`).

The rules are heuristic static analysis, not a type system: they
resolve names syntactically (a parameter annotated or named like a
``TaskGraph`` is treated as one) and deliberately prefer a rare,
documented suppression over missing a real violation.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .engine import FileContext, Finding, Project, Rule

__all__ = [
    "SchedulerPurity",
    "RngDiscipline",
    "FingerprintCompleteness",
    "RegistryCliSync",
    "FloatEquality",
    "OutputDiscipline",
    "ALL_RULES",
]


def _root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` of an attribute/subscript chain, if any.

    ``graph.weights[i]`` -> ``graph``; ``self.graph.x`` -> ``self``.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _annotation_text(node: Optional[ast.AST]) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed annotation
        return ""


def _attr_chain(node: ast.AST) -> str:
    """Dotted text of a pure attribute chain (``np.random.rand``), else ""."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _walk_preorder(node: ast.AST) -> Iterator[ast.AST]:
    """Depth-first pre-order walk: children in source order."""
    for child in ast.iter_child_nodes(node):
        yield child
        yield from _walk_preorder(child)


def _annotation_nodes(tree: ast.AST) -> Set[int]:
    """ids of every AST node living inside a type-annotation position."""
    spots: Set[int] = set()

    def mark(node: Optional[ast.AST]) -> None:
        if node is None:
            return
        for sub in ast.walk(node):
            spots.add(id(sub))

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            mark(node.returns)
            args = node.args
            for arg in (args.posonlyargs + args.args + args.kwonlyargs
                        + ([args.vararg] if args.vararg else [])
                        + ([args.kwarg] if args.kwarg else [])):
                mark(arg.annotation)
        elif isinstance(node, ast.AnnAssign):
            mark(node.annotation)
    return spots


# ----------------------------------------------------------------------
# RPR001 — scheduler purity
# ----------------------------------------------------------------------
class SchedulerPurity(Rule):
    """Scheduling code must never mutate its ``TaskGraph``/``Machine``.

    Every algorithm in the comparison reads the *same* graph object —
    the grid engine, the scenario sweeps, the Monte-Carlo layer and the
    adversarial search all hand one immutable instance to many
    schedulers (often across worker processes and memo caches).  A
    single in-place weight tweak or adjacency edit by one algorithm
    silently corrupts every ranking computed after it.  This rule flags
    any statement in scheduling code that assigns to, augments, deletes
    from, or calls a mutating method on an attribute/index of a
    parameter that is (by annotation or name) a ``TaskGraph`` or
    ``Machine``.
    """

    code = "RPR001"
    name = "scheduler-purity"

    SCOPE_DIRS = ("repro/algorithms/", "repro/duplication/",
                  "repro/sim/online/")
    SCOPE_FILES = ("repro/core/listsched.py", "repro/core/kernel.py")

    PARAM_TYPES = ("TaskGraph", "Machine", "NetworkMachine")
    PARAM_NAMES = ("graph", "taskgraph", "machine", "seed_graph")
    MUTATORS = (
        "append", "extend", "insert", "remove", "pop", "clear", "sort",
        "reverse", "update", "setdefault", "popitem", "fill", "setflags",
        "add", "discard", "put", "resize", "sort_indices",
    )

    def applies(self, relpath: str) -> bool:
        return (relpath in self.SCOPE_FILES
                or any(relpath.startswith(d) for d in self.SCOPE_DIRS))

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            tracked = self._tracked_params(func)
            if tracked:
                yield from self._scan_body(ctx, func, tracked)

    def _tracked_params(self, func: ast.FunctionDef) -> Set[str]:
        tracked: Set[str] = set()
        args = func.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            note = _annotation_text(arg.annotation)
            if any(t in note for t in self.PARAM_TYPES):
                tracked.add(arg.arg)
            elif not note and arg.arg.lower() in self.PARAM_NAMES:
                tracked.add(arg.arg)
        return tracked

    def _scan_body(self, ctx: FileContext, func: ast.FunctionDef,
                   tracked: Set[str]) -> Iterator[Finding]:
        # Re-bound names stop being the parameter (graph = graph.copy()).
        # Pre-order traversal keeps source order, so a rebinding only
        # clears writes *after* it — ast.walk's breadth-first order
        # would let a late rebinding mask an earlier nested mutation.
        rebound: Set[str] = set()
        for node in _walk_preorder(func):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                for leaf in self._flatten(target):
                    if isinstance(leaf, ast.Name):
                        if leaf.id in tracked:
                            rebound.add(leaf.id)
                        continue
                    root = _root_name(leaf)
                    if (root in tracked and root not in rebound
                            and isinstance(leaf,
                                           (ast.Attribute, ast.Subscript))):
                        yield ctx.finding(
                            self, leaf,
                            f"statement writes to {root!r} "
                            f"({ast.unparse(leaf)}) — scheduling code must "
                            f"treat TaskGraph/Machine inputs as immutable",
                        )
            if isinstance(node, ast.Call):
                fn = node.func
                if (isinstance(fn, ast.Attribute)
                        and fn.attr in self.MUTATORS
                        and isinstance(fn.value,
                                       (ast.Attribute, ast.Subscript))):
                    root = _root_name(fn.value)
                    if root in tracked and root not in rebound:
                        yield ctx.finding(
                            self, node,
                            f"call mutates {root!r} in place "
                            f"({ast.unparse(fn)}(...)) — scheduling code "
                            f"must treat TaskGraph/Machine inputs as "
                            f"immutable",
                        )

    @staticmethod
    def _flatten(target: ast.AST) -> Iterator[ast.AST]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from SchedulerPurity._flatten(elt)
        else:
            yield target


# ----------------------------------------------------------------------
# RPR002 — RNG discipline
# ----------------------------------------------------------------------
class RngDiscipline(Rule):
    """All randomness must flow through :mod:`repro.core.rng`.

    Reproducibility rests on two contracts: no module keeps global RNG
    state, and every stochastic entry point accepts a seed or a
    ``numpy.random.Generator`` (so noise streams can be derived per
    cell, order-independently).  A stray ``np.random.rand()`` or
    ``import random`` reads hidden global state and silently breaks
    cache keys, resume, and parallel/serial equivalence.  Outside
    ``repro/core/rng.py`` this rule flags: any ``np.random.*`` /
    ``numpy.random.*`` value use (the ``Generator``/``SeedSequence``
    *types* in annotations and ``isinstance`` checks are fine), imports
    of the stdlib ``random`` module or of ``numpy.random`` members, and
    ``as_generator``/``derive_rng`` calls whose seed is a hard-coded
    literal (which pins a stream the caller cannot reproduce or vary).
    """

    code = "RPR002"
    name = "rng-discipline"

    EXEMPT = ("repro/core/rng.py",)
    #: np.random attributes that are types, legal anywhere.
    TYPE_ATTRS = ("Generator", "SeedSequence", "BitGenerator")

    def applies(self, relpath: str) -> bool:
        return relpath not in self.EXEMPT

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        anno = _annotation_nodes(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top == "random":
                        yield ctx.finding(
                            self, node,
                            "stdlib 'random' uses hidden global state — "
                            "use repro.core.rng (seeded numpy Generators)",
                        )
                    elif alias.name == "numpy.random":
                        yield ctx.finding(
                            self, node,
                            "import numpy.random outside repro.core.rng — "
                            "take a seed/Generator and canonicalise via "
                            "repro.core.rng.as_generator",
                        )
            elif isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                if mod == "random" or mod.startswith("random."):
                    yield ctx.finding(
                        self, node,
                        "stdlib 'random' uses hidden global state — use "
                        "repro.core.rng (seeded numpy Generators)",
                    )
                elif mod == "numpy.random" or (
                        mod == "numpy" and any(a.name == "random"
                                               for a in node.names)):
                    names = {a.name for a in node.names}
                    if not names <= set(self.TYPE_ATTRS):
                        yield ctx.finding(
                            self, node,
                            "import from numpy.random outside "
                            "repro.core.rng — route draws through "
                            "as_generator/derive_rng",
                        )
            elif isinstance(node, ast.Attribute) and id(node) not in anno:
                chain = _attr_chain(node)
                if chain.startswith(("np.random.", "numpy.random.")):
                    leaf = chain.rsplit(".", 1)[1]
                    if leaf not in self.TYPE_ATTRS:
                        yield ctx.finding(
                            self, node,
                            f"{chain} outside repro.core.rng — all draws "
                            "must come from a seed/Generator passed in "
                            "and canonicalised by as_generator/derive_rng",
                        )
            elif isinstance(node, ast.Call):
                fn = node.func
                fname = fn.id if isinstance(fn, ast.Name) else (
                    fn.attr if isinstance(fn, ast.Attribute) else "")
                if fname in ("as_generator", "derive_rng") and node.args:
                    seed = node.args[0]
                    if isinstance(seed, ast.Constant):
                        yield ctx.finding(
                            self, seed,
                            f"{fname}() called with the hard-coded seed "
                            f"{seed.value!r} — stochastic entry points "
                            "must accept a seed/Generator parameter",
                        )
                elif fname == "default_rng" and isinstance(fn, ast.Name):
                    yield ctx.finding(
                        self, node,
                        "bare default_rng() outside repro.core.rng — "
                        "use as_generator(seed) so int, Generator and "
                        "None seeds all canonicalise the same way",
                    )


# ----------------------------------------------------------------------
# RPR003 — fingerprint completeness
# ----------------------------------------------------------------------
class FingerprintCompleteness(Rule):
    """Every config dataclass field must flow into its fingerprint.

    Result stores cache rows by ``(algorithm, graph, fingerprint)``;
    ``--resume`` replays any cached row whose key matches.  A config
    field that changes behaviour but not the fingerprint makes two
    *different* experiments share cache rows — resumed results silently
    come from the wrong configuration.  For every dataclass that
    defines a ``fingerprint`` method, this rule collects the
    ``self.<attr>`` reads reachable from ``fingerprint`` (following
    same-class helper methods and properties transitively) and flags
    any declared field that never feeds it.  Fields covered by a
    different part of the cache key (e.g. a per-row label) carry a
    ``# repro: noqa-RPR003 <why>`` on their definition line.
    """

    code = "RPR003"
    name = "fingerprint-completeness"

    def applies(self, relpath: str) -> bool:
        return True

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and self._is_dataclass(node):
                yield from self._check_class(ctx, node)

    @staticmethod
    def _is_dataclass(cls: ast.ClassDef) -> bool:
        for dec in cls.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            name = (target.id if isinstance(target, ast.Name)
                    else target.attr if isinstance(target, ast.Attribute)
                    else "")
            if name == "dataclass":
                return True
        return False

    def _check_class(self, ctx: FileContext,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "fingerprint" not in methods:
            return
        fields: List[Tuple[str, ast.AnnAssign]] = []
        for stmt in cls.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and not stmt.target.id.startswith("_")
                    and "ClassVar" not in _annotation_text(stmt.annotation)):
                fields.append((stmt.target.id, stmt))
        if not fields:
            return
        used = self._reachable_attrs(methods, "fingerprint")
        for name, stmt in fields:
            if name not in used:
                yield ctx.finding(
                    self, stmt,
                    f"dataclass field {cls.name}.{name} never reaches "
                    f"{cls.name}.fingerprint() — a config axis outside "
                    "the cache key makes resumed rows lie",
                )

    @staticmethod
    def _reachable_attrs(methods: Dict[str, ast.FunctionDef],
                         start: str) -> Set[str]:
        seen_methods: Set[str] = set()
        attrs: Set[str] = set()
        stack = [start]
        while stack:
            name = stack.pop()
            if name in seen_methods or name not in methods:
                continue
            seen_methods.add(name)
            for node in ast.walk(methods[name]):
                if (isinstance(node, ast.Attribute)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "self"):
                    attrs.add(node.attr)
                    if node.attr in methods:
                        stack.append(node.attr)
        return attrs


# ----------------------------------------------------------------------
# RPR004 — registry/CLI sync
# ----------------------------------------------------------------------
class RegistryCliSync(Rule):
    """The scenario registry and every CLI reference to it must agree.

    Scenarios are addressed by name from the CLI (``scenario run``,
    ``sim run/compare``, ``adv search/show/export``), from CI workflows
    and from the docs.  A renamed or deleted registry entry leaves
    stale references that fail at 2am in the nightly run; an entry
    nobody references is dead weight that silently rots.  This rule
    checks three directions: (a) every registry key equals its
    document's ``name`` and validates against the spec schema, (b)
    every ``repro-bench``/``repro.bench`` invocation of a bare scenario
    name — in source docstrings, README/DESIGN/EXPERIMENTS, workflows
    and examples — names a registered scenario, and (c) every registry
    entry is referenced at least once outside the registry itself.

    Tokens that continue with a path or spec character are not
    scenario names: ``examples/foo.json`` is a file, and
    ``param:prio=...`` is a parameterized scheduler spec (the
    component-space names resolve through ``get_scheduler``, not the
    scenario registry).
    """

    code = "RPR004"
    name = "registry-cli-sync"

    REGISTRY = "repro/scenarios/registry.py"
    _INVOKE = re.compile(
        r"(?:repro-bench|repro\.bench)\s+"
        r"(?:scenario\s+(?:run|validate)|sim\s+(?:run|compare)|"
        r"adv\s+(?:search|show|export))\s+"
        r"(?P<name>[A-Za-z0-9][A-Za-z0-9_-]*)")

    def applies(self, relpath: str) -> bool:
        return False  # project-level rule; no per-file pass

    def check_project(self, project: Project) -> Iterator[Finding]:
        registry = project.file(self.REGISTRY)
        if registry is None:
            return
        entries = self._registry_entries(registry)
        names = {name for name, _, _ in entries}

        # (a) key == doc name, and the document passes the spec schema.
        for name, doc_name, node in entries:
            if doc_name is not None and doc_name != name:
                yield registry.finding(
                    self, node,
                    f"registry key {name!r} disagrees with its "
                    f"document's name {doc_name!r}",
                )
        yield from self._validate_entries(registry, entries)

        # (b) every CLI-style reference resolves to a registered name.
        referenced: Set[str] = set()
        for path, lineno, text in project.reference_lines():
            for match in self._INVOKE.finditer(text):
                token = match.group("name")
                end = match.end("name")
                if end < len(text) and text[end] in "./:=":
                    # A file path ("examples/foo.json") or a
                    # parameterized component spec ("param:prio=..."),
                    # not a registry name.
                    continue
                referenced.add(token)
                if token not in names:
                    yield Finding(
                        code=self.code, path=path,
                        line=lineno, col=match.start("name") + 1,
                        message=f"reference to unregistered scenario "
                                f"{token!r} (registered: "
                                f"{', '.join(sorted(names))})",
                    )

        # (c) every registry entry is referenced somewhere else.
        mentioned = set(referenced)
        for path, _, text in project.reference_lines():
            if path.endswith(self.REGISTRY):
                continue
            for name in names:
                if name in mentioned:
                    continue
                if name in text:
                    mentioned.add(name)
        for name, _, node in entries:
            if name not in mentioned:
                yield registry.finding(
                    self, node,
                    f"scenario {name!r} is registered but never "
                    "referenced from any CLI example, workflow, doc or "
                    "test — dead registry entries rot silently",
                )

    @staticmethod
    def _registry_entries(ctx: FileContext
                          ) -> List[Tuple[str, Optional[str], ast.AST]]:
        """(key, doc name, key node) per ``SCENARIOS`` entry, by AST."""
        entries: List[Tuple[str, Optional[str], ast.AST]] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                targets: List[ast.AST] = list(node.targets)
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            if not (any(isinstance(t, ast.Name) and t.id == "SCENARIOS"
                        for t in targets)
                    and isinstance(node.value, ast.Dict)):
                continue
            for key, value in zip(node.value.keys, node.value.values):
                if not (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)):
                    continue
                doc_name: Optional[str] = None
                if isinstance(value, ast.Dict):
                    for k, v in zip(value.keys, value.values):
                        if (isinstance(k, ast.Constant)
                                and k.value == "name"
                                and isinstance(v, ast.Constant)):
                            doc_name = str(v.value)
                entries.append((key.value, doc_name, key))
        return entries

    def _validate_entries(self, ctx: FileContext,
                          entries: Sequence[Tuple[str, Optional[str],
                                                  ast.AST]]
                          ) -> Iterator[Finding]:
        """Schema-check each registered document via the live package."""
        try:
            from ..scenarios import get_scenario
        except Exception:  # pragma: no cover - package not importable
            return
        for name, _, node in entries:
            try:
                get_scenario(name)
            except KeyError:
                # The analyzed tree and the imported package differ
                # (e.g. fixtures); key-name sync was already checked.
                continue
            except Exception as exc:
                yield ctx.finding(
                    self, node,
                    f"registered scenario {name!r} fails spec "
                    f"validation: {exc}",
                )


# ----------------------------------------------------------------------
# RPR005 — float equality on computed times
# ----------------------------------------------------------------------
class FloatEquality(Rule):
    """No ``==``/``!=`` on computed times in scheduling/sim code.

    Start/finish/ready times are sums and maxima of float64 values
    accumulated in data-dependent order; two mathematically equal times
    routinely differ in the last bit.  An exact comparison that happens
    to hold on today's golden corpus breaks the moment a kernel reorders
    a reduction — the classic source of "schedules differ on one
    machine only" bugs.  In ``core``/``algorithms``/``duplication``/
    ``sim`` code this rule flags equality comparisons where either side
    is a float literal or a time-like expression (``start``, ``finish``,
    ``arrival``, ``est``, ``drt``, ``makespan``, ...); use
    ``math.isclose`` or the module's epsilon idiom instead.  Exact
    comparisons that are *semantically* exact (config identity checks,
    normalisation triggers) carry a ``# repro: noqa-RPR005 <why>``.
    """

    code = "RPR005"
    name = "float-equality"

    SCOPE_DIRS = ("repro/core/", "repro/algorithms/", "repro/duplication/",
                  "repro/sim/")
    TIME_NAMES = frozenset((
        "start", "finish", "arrival", "est", "eft", "drt", "makespan",
        "length", "slack", "latency", "tlevel", "blevel", "alap",
        "deadline", "duration", "ready_time", "proc_free", "cp",
    ))

    def applies(self, relpath: str) -> bool:
        return any(relpath.startswith(d) for d in self.SCOPE_DIRS)

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                culprit = self._float_operand(left) or \
                    self._float_operand(right)
                if culprit is not None:
                    yield ctx.finding(
                        self, node,
                        f"exact {'==' if isinstance(op, ast.Eq) else '!='} "
                        f"against {culprit} — computed times are float64; "
                        "use math.isclose or the module's epsilon idiom",
                    )

    def _float_operand(self, node: ast.AST) -> Optional[str]:
        """Describe why an operand looks like a computed float, or None."""
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return f"the float literal {node.value!r}"
        ident = ""
        if isinstance(node, ast.Name):
            ident = node.id
        elif isinstance(node, ast.Attribute):
            ident = node.attr
        elif isinstance(node, ast.Subscript):
            base = node.value
            if isinstance(base, ast.Name):
                ident = base.id
            elif isinstance(base, ast.Attribute):
                ident = base.attr
        ident = ident.lower()
        if ident in self.TIME_NAMES or any(
                ident.endswith("_" + t) or ident.startswith(t + "_")
                for t in ("start", "finish", "time", "level")):
            return f"the time-like expression {ast.unparse(node)!r}"
        return None


# ----------------------------------------------------------------------
# RPR006 — output discipline
# ----------------------------------------------------------------------
class OutputDiscipline(Rule):
    """Library code neither prints nor logs ad hoc.

    Every user-visible artifact in this codebase is a *returned string*
    that a CLI front-end emits — tables and figures are diffed
    byte-for-byte against the paper, and the golden-corpus tests pin
    rendered output exactly, so a stray ``print()`` deep in a kernel or
    scheduler corrupts artifacts and can dominate a hot loop's runtime.
    Ad-hoc ``logging`` is no better: it drags hidden global
    configuration (handlers, levels) into code whose behaviour must be
    a pure function of its inputs.  Diagnostics belong in raised
    exceptions; progress and results belong to the CLI layer
    (``repro/bench/``); run telemetry belongs to the observability
    layer (``repro/obs/``), whose counters and spans are no-ops unless
    armed.  This rule flags bare ``print()`` calls and any ``logging``
    import outside those layers (plus the check subsystem's own report
    renderer and CLI).  The rare legitimate emission elsewhere carries
    a ``# repro: noqa-RPR006 <why>``.
    """

    code = "RPR006"
    name = "output-discipline"

    ALLOWED_DIRS = ("repro/bench/", "repro/obs/")
    ALLOWED_FILES = ("repro/check/report.py",)

    def applies(self, relpath: str) -> bool:
        return not (relpath in self.ALLOWED_FILES
                    or any(relpath.startswith(d)
                           for d in self.ALLOWED_DIRS))

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                fn = node.func
                if isinstance(fn, ast.Name) and fn.id == "print":
                    yield ctx.finding(
                        self, node,
                        "bare print() in library code — return the text "
                        "and let a repro/bench CLI front-end emit it, or "
                        "record telemetry via repro.obs",
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if (alias.name == "logging"
                            or alias.name.startswith("logging.")):
                        yield ctx.finding(
                            self, node,
                            "ad-hoc logging in library code — raise "
                            "exceptions for errors and use repro.obs "
                            "(spans/counters, armed via REPRO_TRACE) "
                            "for telemetry",
                        )
            elif isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                if mod == "logging" or mod.startswith("logging."):
                    yield ctx.finding(
                        self, node,
                        "ad-hoc logging in library code — raise "
                        "exceptions for errors and use repro.obs "
                        "(spans/counters, armed via REPRO_TRACE) for "
                        "telemetry",
                    )


#: The shipped rule set, in code order.
ALL_RULES: Tuple[type, ...] = (
    SchedulerPurity,
    RngDiscipline,
    FingerprintCompleteness,
    RegistryCliSync,
    FloatEquality,
    OutputDiscipline,
)

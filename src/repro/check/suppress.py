"""Inline suppression comments for the static-analysis pass.

A finding is suppressed by a trailing comment on the offending line::

    if all(s == 1.0 for s in speeds):  # repro: noqa-RPR005 exact by design

Forms accepted:

* ``# repro: noqa-RPR001`` — suppress that rule on this line;
* ``# repro: noqa-RPR001,RPR005`` — suppress several rules;
* ``# repro: noqa`` — suppress every rule on this line.

Anything after the code list is free text and is *expected*: a
suppression without a reason defeats the point of the rule docs.  The
comment must sit on the exact line the finding is reported at (for
RPR003 that is the dataclass field's definition line).
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet

__all__ = ["SUPPRESS_ALL", "suppressions", "is_suppressed"]

#: Sentinel code meaning "every rule" (a bare ``# repro: noqa``).
SUPPRESS_ALL = "*"

_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:-(?P<codes>RPR\d{3}(?:\s*,\s*RPR\d{3})*))?",
    re.IGNORECASE,
)


def suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule codes suppressed there."""
    out: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "noqa" not in line:  # cheap pre-filter
            continue
        match = _NOQA.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            out[lineno] = frozenset((SUPPRESS_ALL,))
        else:
            out[lineno] = frozenset(
                c.strip().upper() for c in codes.split(","))
    return out


def is_suppressed(table: Dict[int, FrozenSet[str]], line: int,
                  code: str) -> bool:
    """True when ``code`` is suppressed on ``line`` of the file."""
    codes = table.get(line)
    if codes is None:
        return False
    return SUPPRESS_ALL in codes or code.upper() in codes

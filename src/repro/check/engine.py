"""The analysis engine: file discovery, rule dispatch, suppression.

:func:`run_check` parses every ``repro`` source file once, hands each
:class:`FileContext` to the per-file rules that apply to its path, runs
the project-level rules (which see the whole tree plus the repo's docs,
workflows and tests via :class:`Project`), filters findings through the
inline ``# repro: noqa`` tables and returns them sorted by location.

The engine knows nothing about individual invariants — those live in
:mod:`repro.check.rules` as :class:`Rule` subclasses.  Pointing
``src_root`` at a fixture tree (as the self-tests do) analyses that
tree instead of the installed package.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .suppress import is_suppressed, suppressions

__all__ = ["Finding", "FileContext", "Project", "Rule", "run_check"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a concrete source location."""

    path: str
    line: int
    col: int
    code: str
    message: str


@dataclass
class FileContext:
    """A parsed source file handed to per-file rules."""

    path: Path
    relpath: str  # posix path relative to src_root, e.g. "repro/core/graph.py"
    source: str
    tree: ast.AST
    suppress: Dict[int, frozenset] = field(default_factory=dict)

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        """A finding anchored at ``node``'s location in this file."""
        return Finding(
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=rule.code,
            message=message,
        )


class Project:
    """Whole-tree view for project-level rules (RPR004).

    Besides the parsed source files it exposes
    :meth:`reference_lines` — every line of the repo's docs, CI
    workflows, examples and tests, plus the analysed sources — so
    cross-reference rules can check both directions of a registry.
    """

    #: Path components that are never scanned for references.
    SKIP_PARTS = ("fixtures", "__pycache__", ".git", "results")
    REFERENCE_SUFFIXES = (".md", ".rst", ".txt", ".py", ".sh",
                          ".yml", ".yaml", ".toml", ".cfg", ".ini")

    def __init__(self, src_root: Path, repo_root: Path,
                 contexts: Sequence[FileContext]) -> None:
        self.src_root = src_root
        self.repo_root = repo_root
        self.contexts = list(contexts)
        self._by_relpath = {ctx.relpath: ctx for ctx in self.contexts}
        self._reference_cache: Optional[List[Tuple[str, int, str]]] = None

    def file(self, relpath: str) -> Optional[FileContext]:
        """The parsed context for a src-relative posix path, if analysed."""
        return self._by_relpath.get(relpath)

    def reference_lines(self) -> List[Tuple[str, int, str]]:
        """``(path, lineno, text)`` for every reference-bearing line."""
        if self._reference_cache is None:
            self._reference_cache = list(self._scan_references())
        return self._reference_cache

    def _scan_references(self) -> Iterator[Tuple[str, int, str]]:
        seen: set = set()
        for ctx in self.contexts:
            seen.add(ctx.path.resolve())
            for lineno, text in enumerate(ctx.source.splitlines(), start=1):
                yield str(ctx.path), lineno, text
        roots = [self.repo_root / name
                 for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                              "ROADMAP.md", "CHANGES.md")]
        for directory in (self.repo_root / ".github",
                          self.repo_root / "examples",
                          self.repo_root / "docs",
                          self.repo_root / "tests"):
            if directory.is_dir():
                roots.extend(sorted(directory.rglob("*")))
        for path in roots:
            if (not path.is_file()
                    or path.suffix not in self.REFERENCE_SUFFIXES):
                continue
            try:
                rel_parts = path.relative_to(self.repo_root).parts
            except ValueError:  # pragma: no cover - symlinked root
                rel_parts = path.parts
            if any(part in self.SKIP_PARTS for part in rel_parts):
                continue
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            try:
                text = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):  # pragma: no cover
                continue
            for lineno, line in enumerate(text.splitlines(), start=1):
                yield str(path), lineno, line


class Rule:
    """Base class for RPR rules.

    Subclasses set :attr:`code` (``RPR0xx``) and :attr:`name`, and
    override :meth:`check_file` (with :meth:`applies` scoping the paths
    it sees) and/or :meth:`check_project`.  The class docstring is the
    rule's documentation; its first line is the summary shown by
    ``repro-bench check --list-rules``.
    """

    code: str = ""
    name: str = ""

    def applies(self, relpath: str) -> bool:
        """Whether :meth:`check_file` should see this src-relative path."""
        return False

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one parsed file."""
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Yield findings that need the whole tree."""
        return iter(())

    @classmethod
    def summary(cls) -> str:
        """First line of the rule's docstring."""
        doc = (cls.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else ""


def _default_src_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent.parent


def available_rules() -> List[type]:
    """The shipped rule classes, in code order."""
    from .rules import ALL_RULES

    return list(ALL_RULES)


def select_rules(names: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate rules by code or name (case-insensitive); all by default."""
    classes = available_rules()
    if names is None:
        return [cls() for cls in classes]
    by_key = {}
    for cls in classes:
        by_key[cls.code.lower()] = cls
        by_key[cls.name.lower()] = cls
    chosen: List[Rule] = []
    for name in names:
        key = name.strip().lower()
        if key not in by_key:
            known = ", ".join(cls.code for cls in classes)
            raise KeyError(f"unknown rule {name!r} (known: {known})")
        cls = by_key[key]
        if all(type(r) is not cls for r in chosen):
            chosen.append(cls())
    return chosen


def run_check(src_root: Optional[str] = None,
              repo_root: Optional[str] = None,
              rules: Optional[Sequence[str]] = None) -> List[Finding]:
    """Run the static-analysis pass and return surviving findings.

    ``src_root`` is the directory *containing* the ``repro`` package
    (defaults to the installed package's parent, i.e. ``src/``);
    ``repo_root`` is where docs/workflows/tests live (defaults to the
    parent of ``src_root``); ``rules`` selects a subset by code or
    name.  Findings suppressed by inline ``# repro: noqa`` comments are
    dropped; the rest come back sorted by path, line and column.
    """
    root = Path(src_root).resolve() if src_root else _default_src_root()
    repo = Path(repo_root).resolve() if repo_root else root.parent
    package = root / "repro"
    if not package.is_dir():
        raise FileNotFoundError(f"no 'repro' package under {root}")

    contexts: List[FileContext] = []
    for path in sorted(package.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        contexts.append(FileContext(
            path=path,
            relpath=path.relative_to(root).as_posix(),
            source=source,
            tree=tree,
            suppress=suppressions(source),
        ))

    active = select_rules(rules)
    project = Project(root, repo, contexts)
    raw: List[Finding] = []
    for rule in active:
        for ctx in contexts:
            if rule.applies(ctx.relpath):
                raw.extend(rule.check_file(ctx))
        raw.extend(rule.check_project(project))

    tables: Dict[str, Dict[int, frozenset]] = {
        str(ctx.path): ctx.suppress for ctx in contexts}
    survivors: List[Finding] = []
    for finding in raw:
        table = tables.get(finding.path)
        if table is None:
            try:
                table = suppressions(
                    Path(finding.path).read_text(encoding="utf-8"))
            except (OSError, UnicodeDecodeError):  # pragma: no cover
                table = {}
            tables[finding.path] = table
        if not is_suppressed(table, finding.line, finding.code):
            survivors.append(finding)
    return sorted(set(survivors))

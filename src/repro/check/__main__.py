"""``python -m repro.check`` — run the static-analysis pass."""

from .cli import main

raise SystemExit(main())

"""Domain-aware static analysis and runtime sanitizer for the harness.

The paper's methodology assumes every scheduler computes from the same
immutable inputs under reproducible randomness.  This package turns
those conventions into machine-checked rules:

* **Static analysis** (``repro-bench check``, :mod:`repro.check.engine`)
  — an AST pass over the repo's own source enforcing the RPR rules:

  - RPR001 scheduler purity: scheduling code never writes to a
    ``TaskGraph``/``Machine`` parameter;
  - RPR002 RNG discipline: all randomness flows through
    :mod:`repro.core.rng`;
  - RPR003 fingerprint completeness: every config dataclass field
    reaches its store fingerprint;
  - RPR004 registry/CLI sync: scenario registry and CLI references
    agree;
  - RPR005 float equality: no ``==``/``!=`` on computed times.

  A finding is suppressed by an inline ``# repro: noqa-RPR0xx`` comment
  (see :mod:`repro.check.suppress`) — every suppression in the tree is
  expected to carry a reason.

* **Runtime sanitizer** (``REPRO_SANITIZE=1`` or the ``--sanitize``
  CLI flag, :mod:`repro.check.sanitize`) — arms cheap assertion hooks
  in the kernel, the schedule container and the discrete-event
  simulator (CSR round-trips, arrival-profile oracles, timeline
  ordering, event-heap monotonicity), so the differential corpus and
  property suites double as a memory-corruption detector.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from .sanitize import SanitizeError, enabled as sanitize_enabled

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Finding

__all__ = [
    "SanitizeError",
    "sanitize_enabled",
    "run_check",
    "check_main",
]


def run_check(src_root: Optional[str] = None,
              repo_root: Optional[str] = None,
              rules: Optional[Sequence[str]] = None) -> "List[Finding]":
    """Run the static-analysis pass; see :func:`repro.check.engine.run_check`.

    Imported lazily so that arming the sanitizer (which core modules
    consult at import time) never drags the analyzer in.
    """
    from .engine import run_check as _run

    return _run(src_root=src_root, repo_root=repo_root, rules=rules)


def check_main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point for ``repro-bench check`` / ``python -m repro.check``."""
    from .cli import main as _main

    return _main(argv)

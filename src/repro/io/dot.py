"""Graphviz DOT export for task graphs and schedules."""

from __future__ import annotations

from typing import Optional

from ..core.graph import TaskGraph
from ..core.schedule import Schedule

__all__ = ["to_dot"]

_PALETTE = (
    "lightblue", "lightgreen", "lightsalmon", "plum", "khaki",
    "lightcyan", "mistyrose", "palegreen", "wheat", "lavender",
)


def to_dot(graph: TaskGraph, schedule: Optional[Schedule] = None) -> str:
    """Render ``graph`` (optionally coloured by processor) as DOT text.

    With a ``schedule``, each node is annotated with its processor and
    start time and tinted per processor — handy for eyeballing how a
    clustering algorithm carved the graph up.
    """
    lines = [f'digraph "{graph.name}" {{', "  rankdir=TB;",
             '  node [shape=ellipse, style=filled, fillcolor=white];']
    for node in graph.nodes():
        label = f"n{node}\\nw={graph.weight(node):g}"
        attrs = ""
        if schedule is not None and schedule.is_scheduled(node):
            pl = schedule.placement(node)
            color = _PALETTE[pl.proc % len(_PALETTE)]
            label += f"\\nP{pl.proc}@{pl.start:g}"
            attrs = f', fillcolor="{color}"'
        lines.append(f'  {node} [label="{label}"{attrs}];')
    for u, v, c in graph.edges():
        lines.append(f'  {u} -> {v} [label="{c:g}"];')
    lines.append("}")
    return "\n".join(lines)

"""ASCII Gantt charts for schedules.

Renders per-processor timelines with proportional bars::

    P0 |==0===|--------|====3====|
    P1 |--|=1=|===2===|

Used by the examples and handy when tracing an algorithm's behaviour on
a peer-set graph (the stated purpose of the PSG suite).
"""

from __future__ import annotations

from typing import List

from ..core.schedule import Schedule

__all__ = ["gantt"]


def gantt(schedule: Schedule, width: int = 72,
          show_messages: bool = False) -> str:
    """Render ``schedule`` as an ASCII Gantt chart.

    ``width`` is the number of character cells the makespan is scaled
    into.  With ``show_messages`` each recorded network message appears
    on its own line under the task rows.
    """
    length = schedule.length
    if length <= 0:
        return "(empty schedule)"
    scale = width / length

    def span(a: float, b: float) -> tuple:
        lo = int(round(a * scale))
        hi = max(lo + 1, int(round(b * scale)))
        return lo, hi

    lines: List[str] = [
        f"schedule of {schedule.graph.name}: length={length:g}, "
        f"procs={schedule.processors_used()}"
    ]
    for proc in range(schedule.num_procs):
        tasks = schedule.tasks_on(proc)
        if not tasks:
            continue
        row = [" "] * (width + 1)
        for pl in tasks:
            lo, hi = span(pl.start, pl.finish)
            hi = min(hi, len(row))
            for i in range(lo, hi):
                row[i] = "="
            label = str(pl.node)
            mid = lo + max(0, (hi - lo - len(label)) // 2)
            for i, ch in enumerate(label):
                if mid + i < len(row):
                    row[mid + i] = ch
        lines.append(f"P{proc:<3}|" + "".join(row) + "|")
    if show_messages and schedule.messages:
        lines.append("messages:")
        for (u, v), msg in sorted(schedule.messages.items()):
            if not msg.hops:
                continue
            hops = ", ".join(
                f"{a}->{b}@[{s:g},{f:g})" for ((a, b), s, f) in msg.hops
            )
            lines.append(f"  ({u}->{v}) via {hops} arr={msg.arrival:g}")
    return "\n".join(lines)

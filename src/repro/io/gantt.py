"""ASCII Gantt charts (and timeline extraction) for schedules.

Renders per-processor timelines with proportional bars::

    P0 |==0===|--------|====3====|
    P1 |--|=1=|===2===|

Used by the examples and handy when tracing an algorithm's behaviour on
a peer-set graph (the stated purpose of the PSG suite).

:func:`timeline_rows` is the shared adapter behind both renderings: it
flattens a :class:`~repro.core.schedule.Schedule` — or any result
object carrying one (``SimResult``, ``OnlineResult``) — into plain
``(proc, node, start, finish)`` rows, which is what the observability
layer (:mod:`repro.obs`) turns into per-processor Perfetto tracks and
what :func:`gantt` draws.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from ..core.schedule import Schedule

__all__ = ["gantt", "timeline_rows"]

#: One executed task interval: ``(proc, node, start, finish)``.
TimelineRow = Tuple[int, int, float, float]


def _as_schedule(obj: Union[Schedule, object]) -> Schedule:
    """Accept a Schedule or any result object with a ``.schedule``."""
    if isinstance(obj, Schedule):
        return obj
    inner = getattr(obj, "schedule", None)
    if isinstance(inner, Schedule):
        return inner
    raise TypeError(
        f"expected a Schedule or a result carrying one, got "
        f"{type(obj).__name__}")


def timeline_rows(obj: Union[Schedule, object]) -> List[TimelineRow]:
    """Flatten a schedule (or sim/online result) into timeline rows.

    Rows come out grouped by processor and ordered by start within each
    processor — the canonical order both the Gantt renderer and the
    Perfetto exporter consume, and the order that makes two traces of
    the same execution byte-identical.
    """
    schedule = _as_schedule(obj)
    rows: List[TimelineRow] = []
    for proc in range(schedule.num_procs):
        rows.extend((proc, pl.node, pl.start, pl.finish)
                    for pl in schedule.tasks_on(proc))
    return rows


def gantt(obj: Union[Schedule, object], width: int = 72,
          show_messages: bool = False) -> str:
    """Render a schedule (or sim/online result) as an ASCII Gantt chart.

    ``width`` is the number of character cells the makespan is scaled
    into.  With ``show_messages`` each recorded network message appears
    on its own line under the task rows.
    """
    schedule = _as_schedule(obj)
    length = schedule.length
    if length <= 0:
        return "(empty schedule)"
    scale = width / length

    def span(a: float, b: float) -> tuple:
        lo = int(round(a * scale))
        hi = max(lo + 1, int(round(b * scale)))
        return lo, hi

    lines: List[str] = [
        f"schedule of {schedule.graph.name}: length={length:g}, "
        f"procs={schedule.processors_used()}"
    ]
    for proc in range(schedule.num_procs):
        tasks = schedule.tasks_on(proc)
        if not tasks:
            continue
        row = [" "] * (width + 1)
        for pl in tasks:
            lo, hi = span(pl.start, pl.finish)
            hi = min(hi, len(row))
            for i in range(lo, hi):
                row[i] = "="
            label = str(pl.node)
            mid = lo + max(0, (hi - lo - len(label)) // 2)
            for i, ch in enumerate(label):
                if mid + i < len(row):
                    row[mid + i] = ch
        lines.append(f"P{proc:<3}|" + "".join(row) + "|")
    if show_messages and schedule.messages:
        lines.append("messages:")
        for (u, v), msg in sorted(schedule.messages.items()):
            if not msg.hops:
                continue
            hops = ", ".join(
                f"{a}->{b}@[{s:g},{f:g})" for ((a, b), s, f) in msg.hops
            )
            lines.append(f"  ({u}->{v}) via {hops} arr={msg.arrival:g}")
    return "\n".join(lines)

"""Interchange and rendering: STG text format, DOT export, ASCII Gantt."""

from .dot import to_dot
from .gantt import gantt
from .stg import dump_stg, dumps_stg, load_stg, loads_stg

__all__ = [
    "dump_stg",
    "dumps_stg",
    "load_stg",
    "loads_stg",
    "to_dot",
    "gantt",
]

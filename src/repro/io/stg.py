"""STG-style task graph text format.

A plain-text interchange format modelled on the Standard Task Graph Set
conventions, extended with edge communication costs (classic STG assumes
zero communication; DAG-scheduling research needs edge weights)::

    # comment
    <num_nodes>
    <node_id> <computation_cost> <num_parents> [<parent_id> <comm_cost>]...

Node ids are consecutive integers from 0 in topological order of
appearance.  Writers always emit nodes in id order; readers accept any
order as long as ids are consecutive.
"""

from __future__ import annotations

import io
from typing import Dict, List, TextIO, Tuple

from ..core.exceptions import GraphError
from ..core.graph import TaskGraph

__all__ = ["dump_stg", "dumps_stg", "load_stg", "loads_stg"]


def dumps_stg(graph: TaskGraph) -> str:
    """Serialise ``graph`` to the STG-style text format."""
    out = io.StringIO()
    dump_stg(graph, out)
    return out.getvalue()


def dump_stg(graph: TaskGraph, fh: TextIO) -> None:
    """Write ``graph`` to an open text file."""
    fh.write(f"# task graph {graph.name}\n")
    fh.write(f"# v={graph.num_nodes} e={graph.num_edges} "
             f"ccr={graph.ccr:.6g}\n")
    fh.write(f"{graph.num_nodes}\n")
    for node in graph.nodes():
        parents = graph.predecessors(node)
        parts = [str(node), f"{graph.weight(node):.10g}", str(len(parents))]
        for p in parents:
            parts.append(str(p))
            parts.append(f"{graph.comm_cost(p, node):.10g}")
        fh.write(" ".join(parts) + "\n")


def loads_stg(text: str, name: str = "stg") -> TaskGraph:
    """Parse a graph from STG-style text."""
    return load_stg(io.StringIO(text), name=name)


def load_stg(fh: TextIO, name: str = "stg") -> TaskGraph:
    """Read a graph from an open text file."""
    tokens: List[str] = []
    for line in fh:
        body = line.split("#", 1)[0].strip()
        if body:
            tokens.extend(body.split())
    if not tokens:
        raise GraphError("empty STG input")
    it = iter(tokens)

    def next_int() -> int:
        try:
            return int(next(it))
        except StopIteration:
            raise GraphError("truncated STG input") from None
        except ValueError as exc:
            raise GraphError(f"bad STG token: {exc}") from None

    def next_float() -> float:
        try:
            return float(next(it))
        except StopIteration:
            raise GraphError("truncated STG input") from None
        except ValueError as exc:
            raise GraphError(f"bad STG token: {exc}") from None

    n = next_int()
    weights = [0.0] * n
    seen = [False] * n
    edges: Dict[Tuple[int, int], float] = {}
    for _ in range(n):
        node = next_int()
        if not (0 <= node < n):
            raise GraphError(f"node id {node} out of range")
        if seen[node]:
            raise GraphError(f"duplicate node record {node}")
        seen[node] = True
        weights[node] = next_float()
        n_parents = next_int()
        for _ in range(n_parents):
            parent = next_int()
            cost = next_float()
            edges[(parent, node)] = cost
    remainder = list(it)
    if remainder:
        raise GraphError(f"trailing STG tokens: {remainder[:4]}")
    return TaskGraph(weights, edges, name=name)
